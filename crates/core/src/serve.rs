//! The serving engine: micro-batched, cached, backpressured inference over
//! a [`ServableModel`] (design principle 3: the distilled model exists to be
//! *served*).
//!
//! ## Architecture
//!
//! ```text
//!  submit ──► cache probe ──hit──► ready (latency ≈ 0)
//!               │ miss
//!               ▼
//!        bounded admission queue ──full──► ServeError::Overloaded (shed)
//!               │
//!  tick ──► batcher: cut full batches (max_batch) or the deadline
//!           remainder (max_delay elapsed for the oldest request)
//!               │
//!               ▼
//!        core::exec::Executor — one worker per cut batch, results
//!        reassembled in cut order, rows in arrival order
//!               │
//!               ▼
//!        responses + cache fill + ServeTelemetry
//! ```
//!
//! ## Determinism
//!
//! The engine extends the execution engine's guarantee (PR 2) to serving:
//! batched, cached, parallel inference is **bitwise identical** to calling
//! [`ServableModel::predict_proba`] once per request. Three facts compose:
//!
//! 1. the tape-free fast path is bitwise identical to the tape path
//!    (`taglets_nn::InferScratch` docs),
//! 2. every forward op is row-independent, so a row's output does not
//!    depend on which batch it rides in, and
//! 3. [`crate::exec::Executor`] reassembles batch results in index order,
//!    so worker scheduling never leaks into output order.
//!
//! The cache preserves this exactly: an entry is only returned after a
//! *bitwise* input comparison, so a hit replays precisely the bytes a
//! forward pass would have produced. Time never enters library code —
//! the engine reads an injected [`Clock`], and the deterministic
//! [`ServingEngine::run`] driver replays a timed request stream against a
//! [`VirtualClock`]. `ServingEngine::run` is a seeded `taglets-lint` TL007
//! root, so any wall-clock call reachable from the serve path fails CI.
//!
//! ## Backpressure
//!
//! Admission is bounded by `queue_cap`: a submit that finds the queue full
//! returns [`ServeError::Overloaded`] immediately — the request is *shed*,
//! counted in telemetry, and never silently dropped or buffered without
//! bound. Callers decide whether to retry, degrade, or propagate.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use taglets_nn::InferScratch;
use taglets_tensor::{argmax_slice, Tensor};

use crate::exec::{Concurrency, Executor};
use crate::servable::ServableModel;

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

/// A monotonic time source, injected so library code never touches the
/// wall clock (the TL007 determinism contract).
///
/// Implementations must be monotonic: successive calls never go backwards.
pub trait Clock {
    /// Nanoseconds since an arbitrary, fixed origin.
    fn now_nanos(&self) -> u64;
}

/// A manually advanced clock for deterministic tests and the
/// [`ServingEngine::run`] replay driver. One "tick" is one nanosecond of
/// virtual time.
#[derive(Debug, Default)]
pub struct VirtualClock {
    // lint: concurrency(Cell makes VirtualClock !Sync, so the replay clock can never be shared across workers; time advances single-threaded in the run loop)
    now: Cell<u64>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances to `t` (no-op when `t` is in the past — virtual time is
    /// monotonic by construction).
    pub fn set_at_least(&self, t: u64) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Advances by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.set(self.now.get().saturating_add(delta));
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.now.get()
    }
}

// ---------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------

/// Which forward pass the engine runs per batch.
///
/// `F32` is the accuracy oracle: bitwise identical to the per-request tape
/// path (the module-level determinism argument). `Int8` trades a bounded
/// accuracy loss for speed at serving-scale layer widths — deterministic
/// (exact i32 accumulation) but *not* bitwise equal to f32, so its
/// cache/replay guarantees are "identical to the int8 forward pass", with
/// argmax-agreement and max-prob-delta bounds against the oracle pinned by
/// the `taglets-nn` test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePath {
    /// Full-precision packed-panel forward pass (the default and oracle).
    #[default]
    F32,
    /// Row-quantized int8 forward pass with fused dequant+bias epilogue.
    Int8,
}

impl InferencePath {
    /// Stable lower-case label used by reports and bench records.
    pub fn name(self) -> &'static str {
        match self {
            InferencePath::F32 => "f32",
            InferencePath::Int8 => "int8",
        }
    }
}

/// Tuning knobs of a [`ServingEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Rows per executed batch; a tick cuts every full `max_batch` chunk
    /// from the queue. Must be in `1..=MAX_BATCH_LIMIT`.
    pub max_batch: usize,
    /// Deadline in clock nanoseconds: once the oldest queued request has
    /// waited this long, the next tick flushes a partial batch rather than
    /// keep it waiting for `max_batch` peers.
    pub max_delay_nanos: u64,
    /// Admission bound: a submit that finds this many requests already
    /// queued is shed with [`ServeError::Overloaded`]. Must be ≥ 1.
    pub queue_cap: usize,
    /// Prediction-cache entries to retain (LRU); `0` disables caching.
    pub cache_capacity: usize,
    /// Worker threads for batch dispatch, resolved through the
    /// `TAGLETS_THREADS` environment override exactly like training runs.
    pub concurrency: Concurrency,
    /// Forward pass used for batch execution (f32 oracle or int8).
    pub path: InferencePath,
}

/// Hard ceiling on [`ServeConfig::max_batch`], so a corrupt config cannot
/// pre-size telemetry or batch buffers absurdly.
pub const MAX_BATCH_LIMIT: usize = 4096;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_delay_nanos: 2_000_000, // 2 ms
            queue_cap: 256,
            cache_capacity: 1024,
            concurrency: Concurrency::Serial,
            path: InferencePath::F32,
        }
    }
}

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The admission queue is full; the request was shed (load-shedding
    /// instead of unbounded growth). Retry later or degrade.
    Overloaded {
        /// The configured admission bound that was hit.
        queue_cap: usize,
    },
    /// The request's feature width does not match the model.
    InputDim {
        /// Width the model expects.
        expected: usize,
        /// Width the request carried.
        got: usize,
    },
    /// The configuration is unusable (zero batch size, zero queue, …).
    InvalidConfig(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_cap } => {
                write!(f, "admission queue full ({queue_cap}); request shed")
            }
            ServeError::InputDim { expected, got } => {
                write!(f, "input width {got} does not match model width {expected}")
            }
            ServeError::InvalidConfig(what) => write!(f, "invalid serve config: {what}"),
        }
    }
}

impl Error for ServeError {}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

/// Number of log-scale latency buckets (fixed, so renderings and goldens
/// never drift with config).
pub const LATENCY_BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram with fixed edges: bucket 0 counts
/// zero-nanosecond observations (virtual-clock cache hits), bucket `i ≥ 1`
/// counts latencies in `[2^(i-1), 2^i)` nanoseconds, and the last bucket
/// absorbs everything larger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, nanos: u64) {
        let idx = Self::bucket_of(nanos);
        self.counts[idx] += 1; // lint: panicfree(bucket_of clamps the index to LATENCY_BUCKETS - 1)
        self.total += 1;
    }

    /// The bucket index an observation falls into.
    pub fn bucket_of(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            ((64 - nanos.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// `[lower, upper)` bounds of bucket `i` in nanoseconds (the final
    /// bucket's upper bound saturates at `u64::MAX`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i >= 63 || i == LATENCY_BUCKETS - 1 {
                u64::MAX
            } else {
                1u64 << i
            };
            (lo, hi)
        }
    }

    /// Adds every observation of `other` into `self` — the router's
    /// cross-replica latency merge. Buckets are fixed-edge, so merging is
    /// exact: the result is the histogram of the union of observations.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.total += other.total;
    }

    /// Count in bucket `i`; out-of-range buckets read as empty.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper edge (exclusive) of the bucket containing the `q`-quantile,
    /// a conservative latency estimate; `0` for an empty histogram.
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= threshold.max(1) {
                return Self::bucket_range(i).1;
            }
        }
        Self::bucket_range(LATENCY_BUCKETS - 1).1
    }
}

/// Why a batch was cut from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The queue held at least `max_batch` requests.
    Full,
    /// The oldest queued request exceeded `max_delay_nanos`.
    Deadline,
    /// An explicit [`ServingEngine::drain`].
    Drain,
}

/// Everything the serving engine records about *how* it served — counters,
/// the latency histogram, and the batch-size distribution. Attached to
/// [`crate::RunTelemetry::serve`] when a run's end model is exercised
/// through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Submit calls, including shed and malformed ones.
    pub submitted: u64,
    /// Requests accepted (queued or answered from cache).
    pub admitted: u64,
    /// Requests refused with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests refused with [`ServeError::InputDim`].
    pub rejected: u64,
    /// Responses produced (cache hits + batch rows).
    pub answered: u64,
    /// Requests answered from the prediction cache.
    pub cache_hits: u64,
    /// Requests that required a forward pass.
    pub cache_misses: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches cut because the queue reached `max_batch`.
    pub full_flushes: u64,
    /// Batches cut because the oldest request hit `max_delay_nanos`.
    pub deadline_flushes: u64,
    /// Batches cut by an explicit drain.
    pub drain_flushes: u64,
    /// `batch_sizes[n]` = batches executed with exactly `n` rows
    /// (index 0 unused; length `max_batch + 1`).
    pub batch_sizes: Vec<u64>,
    /// Per-response latency histogram (clock nanoseconds).
    pub latency: LatencyHistogram,
    /// Upper bound on worker threads batch dispatch may use.
    pub workers: usize,
    /// Which forward pass served every batch (fixed per engine by
    /// [`ServeConfig::path`] — recorded so reports can attribute latency
    /// numbers to the right kernel).
    pub path: InferencePath,
}

impl ServeTelemetry {
    fn new(max_batch: usize, workers: usize, path: InferencePath) -> Self {
        ServeTelemetry {
            submitted: 0,
            admitted: 0,
            shed: 0,
            rejected: 0,
            answered: 0,
            cache_hits: 0,
            cache_misses: 0,
            batches: 0,
            full_flushes: 0,
            deadline_flushes: 0,
            drain_flushes: 0,
            batch_sizes: vec![0; max_batch + 1],
            latency: LatencyHistogram::new(),
            workers,
            path,
        }
    }

    /// Cache hit rate in `[0, 1]` (`0` before any answered request).
    pub fn cache_hit_rate(&self) -> f64 {
        let looked = self.cache_hits + self.cache_misses;
        if looked == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked as f64
        }
    }

    /// Mean rows per executed batch (`0` before any batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let rows: u64 = self
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(n, &c)| n as u64 * c)
            .sum();
        rows as f64 / self.batches as f64
    }
}

// ---------------------------------------------------------------------
// Prediction cache
// ---------------------------------------------------------------------

/// FNV-style hash over the quantized values of a feature row, one mix per
/// element (not per byte — this sits on the cache-hit fast path).
/// Quantization (1/1024 resolution) only shapes the *key*; correctness
/// never depends on it because a hit additionally requires a bitwise input
/// match.
fn input_key(row: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in row {
        let q = (v * 1024.0).round() as i64 as u64;
        h ^= q;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct CacheEntry {
    input: Vec<f32>,
    probs: Vec<f32>,
    predicted: usize,
}

/// Bounded LRU prediction cache. Keys are quantized-input hashes; a lookup
/// must also match the stored input bitwise, so two inputs that collide in
/// key space can never serve each other's prediction.
struct PredictionCache {
    capacity: usize,
    map: BTreeMap<u64, CacheEntry>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

impl PredictionCache {
    fn new(capacity: usize) -> Self {
        PredictionCache {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        // Hot-path shortcut: a repeated hit on the most-recent key (the
        // common serving pattern) skips the linear recency scan entirely.
        if self.order.back() == Some(&key) {
            return;
        }
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, input: &[f32]) -> Option<(Vec<f32>, usize)> {
        if self.capacity == 0 {
            return None;
        }
        let key = input_key(input);
        let hit = match self.map.get(&key) {
            Some(entry) if bitwise_eq(&entry.input, input) => {
                // lint: alloc(a hit hands the caller an owned row; the entry stays resident)
                Some((entry.probs.clone(), entry.predicted))
            }
            _ => None,
        };
        if hit.is_some() {
            self.touch(key);
        }
        hit
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn insert(&mut self, input: Vec<f32>, probs: Vec<f32>, predicted: usize) {
        if self.capacity == 0 {
            return;
        }
        let key = input_key(&input);
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            key,
            CacheEntry {
                input,
                probs,
                predicted,
            },
        );
        self.touch(key);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Bitwise equality of two feature rows (`NaN`-safe and `-0.0`-strict,
/// unlike `==`).
fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Id returned by the submit call (ids count every submit attempt,
    /// so under [`ServingEngine::run`] the id is the stream index).
    pub id: u64,
    /// Class-probability row (sums to 1).
    pub probs: Vec<f32>,
    /// Argmax class.
    pub predicted: usize,
    /// Clock nanoseconds between admission and response.
    pub latency_nanos: u64,
    /// Rows in the batch that answered this request (`0` for cache hits).
    pub batch_size: usize,
    /// Whether the prediction cache answered without a forward pass.
    pub cache_hit: bool,
}

/// A request with an explicit virtual arrival time, replayed by
/// [`ServingEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Virtual arrival time in nanoseconds (non-decreasing streams replay
    /// exactly; an out-of-order time is clamped to the current clock).
    pub at_nanos: u64,
    /// Feature row; width must equal the model's input dimension.
    pub input: Vec<f32>,
}

impl TimedRequest {
    /// A request arriving at `at_nanos` carrying `input`.
    pub fn new(at_nanos: u64, input: Vec<f32>) -> Self {
        TimedRequest { at_nanos, input }
    }
}

/// Result of a [`ServingEngine::run`] replay: one slot per stream entry
/// (`None` = shed under backpressure) plus the engine's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Per-request outcomes, indexed like the input stream.
    pub responses: Vec<Option<ServeResponse>>,
    /// The engine's telemetry after the final drain.
    pub telemetry: ServeTelemetry,
}

struct Pending {
    id: u64,
    arrival: u64,
    input: Vec<f32>,
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Micro-batched, cached, backpressured server around a [`ServableModel`].
///
/// Single-threaded control loop, parallel batch execution: callers drive
/// `submit`/`tick`/`drain` from one thread, and each tick dispatches the
/// cut batches across [`Executor`] workers. See the module docs for the
/// queue/batcher/cache picture and the determinism argument.
pub struct ServingEngine<'a> {
    model: &'a ServableModel,
    config: ServeConfig,
    clock: &'a dyn Clock,
    executor: Executor,
    pending: VecDeque<Pending>,
    ready: Vec<ServeResponse>,
    cache: PredictionCache,
    telemetry: ServeTelemetry,
    next_id: u64,
    scratch: InferScratch,
}

impl<'a> fmt::Debug for ServingEngine<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ServingEngine {{ pending: {}, ready: {}, cached: {}, answered: {} }}",
            self.pending.len(),
            self.ready.len(),
            self.cache.len(),
            self.telemetry.answered
        )
    }
}

impl<'a> ServingEngine<'a> {
    /// Builds an engine serving `model` under `config`, reading time from
    /// `clock`. The concurrency knob is resolved through `TAGLETS_THREADS`
    /// exactly like [`crate::TagletsSystem::run`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `max_batch` is `0` or larger than
    /// [`MAX_BATCH_LIMIT`], or `queue_cap` is `0`.
    pub fn new(
        model: &'a ServableModel,
        config: ServeConfig,
        clock: &'a dyn Clock,
    ) -> Result<Self, ServeError> {
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1"));
        }
        if config.max_batch > MAX_BATCH_LIMIT {
            return Err(ServeError::InvalidConfig(
                "max_batch exceeds MAX_BATCH_LIMIT",
            ));
        }
        if config.queue_cap == 0 {
            return Err(ServeError::InvalidConfig("queue_cap must be >= 1"));
        }
        let concurrency = config.concurrency.from_env();
        let workers = concurrency.workers(config.max_batch);
        Ok(ServingEngine {
            model,
            telemetry: ServeTelemetry::new(config.max_batch, workers, config.path),
            cache: PredictionCache::new(config.cache_capacity),
            executor: Executor::new(concurrency),
            pending: VecDeque::new(),
            ready: Vec::new(),
            next_id: 0,
            scratch: InferScratch::new(),
            config,
            clock,
        })
    }

    /// The model being served.
    pub fn model(&self) -> &ServableModel {
        self.model
    }

    /// Telemetry so far (finalize with [`ServingEngine::into_telemetry`]).
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// Requests admitted but not yet executed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The engine's current load — its admission-queue depth. This is the
    /// signal a [`crate::route::Router`] balances on for least-loaded
    /// dispatch, so it must stay cheap (a `VecDeque` length read) and must
    /// never consult the clock.
    pub fn load(&self) -> usize {
        self.pending.len()
    }

    /// Consumes the engine, returning its telemetry.
    pub fn into_telemetry(self) -> ServeTelemetry {
        self.telemetry
    }

    /// Submits one request. A cache hit is answered immediately; otherwise
    /// the request joins the admission queue until a tick cuts its batch.
    /// Every call consumes one id, returned on success.
    ///
    /// # Errors
    ///
    /// [`ServeError::InputDim`] for a malformed row (not admitted),
    /// [`ServeError::Overloaded`] when the queue is at `queue_cap` (shed).
    pub fn submit(&mut self, input: Vec<f32>) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.telemetry.submitted += 1;

        let expected = self.model.input_dim();
        if input.len() != expected {
            self.telemetry.rejected += 1;
            return Err(ServeError::InputDim {
                expected,
                got: input.len(),
            });
        }

        if let Some((probs, predicted)) = self.cache.get(&input) {
            self.telemetry.admitted += 1;
            self.telemetry.cache_hits += 1;
            self.telemetry.answered += 1;
            self.telemetry.latency.record(0);
            self.ready.push(ServeResponse {
                id,
                probs,
                predicted,
                latency_nanos: 0,
                batch_size: 0,
                cache_hit: true,
            });
            return Ok(id);
        }

        if self.pending.len() >= self.config.queue_cap {
            self.telemetry.shed += 1;
            return Err(ServeError::Overloaded {
                queue_cap: self.config.queue_cap,
            });
        }

        self.telemetry.admitted += 1;
        self.pending.push_back(Pending {
            id,
            arrival: self.clock.now_nanos(),
            input,
        });
        Ok(id)
    }

    /// The next deadline flush time, if any request is waiting.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|p| p.arrival.saturating_add(self.config.max_delay_nanos))
    }

    /// Advances the batcher: cuts every full `max_batch` chunk from the
    /// queue, plus the remainder when the oldest request has hit its
    /// deadline, and executes all cut batches across the executor.
    pub fn tick(&mut self) {
        // lint: alloc(Vec::new defers; allocates only on ticks that cut a batch)
        let mut batches: Vec<(FlushCause, Vec<Pending>)> = Vec::new();
        while self.pending.len() >= self.config.max_batch {
            // lint: alloc(the batch hand-off owns its requests; one Vec per cut)
            let cut: Vec<Pending> = self.pending.drain(..self.config.max_batch).collect();
            batches.push((FlushCause::Full, cut));
        }
        if let Some(deadline) = self.next_deadline() {
            if self.clock.now_nanos() >= deadline {
                // lint: alloc(deadline cut takes ownership of the queued remainder)
                let cut: Vec<Pending> = self.pending.drain(..).collect();
                batches.push((FlushCause::Deadline, cut));
            }
        }
        self.execute(batches);
    }

    /// Flushes everything still queued, regardless of deadlines — the
    /// shutdown path, so no admitted request is ever lost.
    pub fn drain(&mut self) {
        // lint: alloc(Vec::new defers; shutdown path, not steady state)
        let mut batches: Vec<(FlushCause, Vec<Pending>)> = Vec::new();
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.config.max_batch);
            // lint: alloc(the batch hand-off owns its requests; one Vec per cut)
            let cut: Vec<Pending> = self.pending.drain(..take).collect();
            batches.push((FlushCause::Drain, cut));
        }
        self.execute(batches);
    }

    /// Responses completed since the last call, in completion order
    /// (batches in cut order, rows in arrival order — deterministic).
    pub fn take_responses(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.ready)
    }

    /// Executes cut batches: one executor job per batch, reassembled in
    /// cut order so parallel dispatch is invisible in the output.
    fn execute(&mut self, batches: Vec<(FlushCause, Vec<Pending>)>) {
        if batches.is_empty() {
            return;
        }
        let dim = self.model.input_dim();
        let tensors: Vec<Tensor> = batches
            .iter()
            .map(|(_, rows)| {
                // lint: alloc(batch assembly owns the flat row-major copy handed to the tensor)
                let mut flat = Vec::with_capacity(rows.len() * dim);
                for p in rows {
                    flat.extend_from_slice(&p.input);
                }
                Tensor::from_vec(flat).reshaped(&[rows.len(), dim])
            })
            .collect(); // lint: alloc(one owned input tensor per cut batch)

        let model = self.model;
        let path = self.config.path;
        let infer_one_batch = |x: &Tensor, scratch: &mut InferScratch| match path {
            InferencePath::F32 => model.predict_proba_batched(x, scratch),
            InferencePath::Int8 => model.predict_proba_quantized(x, scratch),
        };
        let probs: Vec<Tensor> = if tensors.len() == 1 {
            // Serial fast path: reuse the engine's preallocated scratch.
            // lint: alloc(one-element result list), panicfree(this branch checked len() == 1)
            vec![infer_one_batch(&tensors[0], &mut self.scratch)]
        } else {
            let executor = self.executor;
            executor.map(tensors.len(), |i| {
                let mut scratch = InferScratch::new();
                // lint: panicfree(executor.map yields i < tensors.len())
                infer_one_batch(&tensors[i], &mut scratch)
            })
        };

        let done = self.clock.now_nanos();
        for ((cause, rows), batch_probs) in batches.into_iter().zip(probs) {
            let n = rows.len();
            self.telemetry.batches += 1;
            if let Some(slot) = self.telemetry.batch_sizes.get_mut(n) {
                *slot += 1;
            }
            match cause {
                FlushCause::Full => self.telemetry.full_flushes += 1,
                FlushCause::Deadline => self.telemetry.deadline_flushes += 1,
                FlushCause::Drain => self.telemetry.drain_flushes += 1,
            }
            for (r, p) in rows.into_iter().enumerate() {
                // lint: alloc(the response row must outlive the batch tensor)
                let row = batch_probs.row(r).to_vec();
                let predicted = argmax_slice(&row);
                let latency = done.saturating_sub(p.arrival);
                self.telemetry.cache_misses += 1;
                self.telemetry.answered += 1;
                self.telemetry.latency.record(latency);
                if self.cache.enabled() {
                    // lint: alloc(the cache keeps its own copy of the row)
                    self.cache.insert(p.input, row.clone(), predicted);
                }
                self.ready.push(ServeResponse {
                    id: p.id,
                    probs: row,
                    predicted,
                    latency_nanos: latency,
                    batch_size: n,
                    cache_hit: false,
                });
            }
        }
    }

    /// Deterministically replays a timed request stream against a fresh
    /// engine and [`VirtualClock`]: the clock advances to each arrival
    /// (processing any deadline flush at its exact due time first), the
    /// batcher ticks once per distinct timestamp, and a final drain answers
    /// every admitted request. Seeded as a `taglets-lint` TL007 root: the
    /// whole reachable serve path must stay free of wall-clock reads.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] from engine construction or
    /// [`ServeError::InputDim`] for a malformed row. Overload is *not* an
    /// error here: shed requests simply leave a `None` slot.
    pub fn run(
        model: &ServableModel,
        config: ServeConfig,
        stream: &[TimedRequest],
    ) -> Result<ServeRun, ServeError> {
        let clock = VirtualClock::new();
        let mut engine = ServingEngine::new(model, config, &clock)?;
        let mut last_time: Option<u64> = None;
        for req in stream {
            let target = req.at_nanos.max(clock.now_nanos());
            if last_time != Some(target) {
                // Fire any deadline that falls strictly before the new
                // arrival at its exact due time, so deadline latencies are
                // measured at the deadline, not at the next arrival.
                while let Some(due) = engine.next_deadline() {
                    if due >= target {
                        break;
                    }
                    clock.set_at_least(due);
                    engine.tick();
                }
                clock.set_at_least(target);
                engine.tick();
                last_time = Some(target);
            }
            // lint: alloc(the engine takes an owned input; the stream is kept for the report)
            match engine.submit(req.input.clone()) {
                Ok(_) | Err(ServeError::Overloaded { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(due) = engine.next_deadline() {
            clock.set_at_least(due);
        }
        engine.drain();

        // lint: alloc(one slot table per replay run)
        let mut responses: Vec<Option<ServeResponse>> = vec![None; stream.len()];
        for r in engine.take_responses() {
            let slot = r.id as usize;
            if let Some(cell) = responses.get_mut(slot) {
                *cell = Some(r);
            }
        }
        Ok(ServeRun {
            responses,
            telemetry: engine.into_telemetry(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use taglets_nn::Classifier;

    fn model() -> ServableModel {
        let mut rng = StdRng::seed_from_u64(42);
        ServableModel::new(Classifier::from_dims(&[4, 8], 3, 0.0, &mut rng))
    }

    fn rows(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tensor::randn(&[1, 4], 1.0, &mut rng).into_vec())
            .collect()
    }

    #[test]
    fn full_batch_is_cut_at_tick_and_answers_everyone() {
        let m = model();
        let clock = VirtualClock::new();
        let cfg = ServeConfig {
            max_batch: 4,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let mut engine = ServingEngine::new(&m, cfg, &clock).unwrap();
        for input in rows(4, 0) {
            engine.submit(input).unwrap();
        }
        assert_eq!(engine.pending_len(), 4);
        engine.tick();
        let responses = engine.take_responses();
        assert_eq!(responses.len(), 4);
        assert!(responses.iter().all(|r| r.batch_size == 4 && !r.cache_hit));
        assert_eq!(engine.telemetry().full_flushes, 1);
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let m = model();
        let clock = VirtualClock::new();
        let cfg = ServeConfig {
            max_batch: 8,
            max_delay_nanos: 100,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let mut engine = ServingEngine::new(&m, cfg, &clock).unwrap();
        engine.submit(rows(1, 1).remove(0)).unwrap();
        engine.tick();
        assert_eq!(engine.take_responses().len(), 0, "deadline not reached");
        clock.advance(100);
        engine.tick();
        let r = engine.take_responses();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].latency_nanos, 100);
        assert_eq!(engine.telemetry().deadline_flushes, 1);
    }

    #[test]
    fn overload_sheds_instead_of_growing() {
        let m = model();
        let clock = VirtualClock::new();
        let cfg = ServeConfig {
            max_batch: 16,
            queue_cap: 2,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let mut engine = ServingEngine::new(&m, cfg, &clock).unwrap();
        let inputs = rows(3, 2);
        assert!(engine.submit(inputs[0].clone()).is_ok());
        assert!(engine.submit(inputs[1].clone()).is_ok());
        assert!(matches!(
            engine.submit(inputs[2].clone()),
            Err(ServeError::Overloaded { queue_cap: 2 })
        ));
        assert_eq!(engine.pending_len(), 2);
        assert_eq!(engine.telemetry().shed, 1);
        engine.drain();
        let t = engine.telemetry();
        assert_eq!(t.shed + t.answered, t.submitted);
    }

    #[test]
    fn cache_hit_answers_immediately_and_bitwise_identically() {
        let m = model();
        let clock = VirtualClock::new();
        let cfg = ServeConfig {
            max_batch: 1,
            cache_capacity: 8,
            ..ServeConfig::default()
        };
        let mut engine = ServingEngine::new(&m, cfg, &clock).unwrap();
        let input = rows(1, 3).remove(0);
        engine.submit(input.clone()).unwrap();
        engine.tick();
        let first = engine.take_responses().remove(0);
        assert!(!first.cache_hit);

        engine.submit(input.clone()).unwrap();
        let hit = engine.take_responses().remove(0);
        assert!(hit.cache_hit);
        assert_eq!(hit.probs, first.probs);
        let direct = m.predict_proba(&Tensor::from_vec(input).reshaped(&[1, 4]));
        assert_eq!(hit.probs, direct.row(0));
        assert_eq!(engine.telemetry().cache_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PredictionCache::new(2);
        let (a, b, c) = (vec![1.0f32], vec![2.0f32], vec![3.0f32]);
        cache.insert(a.clone(), vec![0.5], 0);
        cache.insert(b.clone(), vec![0.6], 0);
        assert!(cache.get(&a).is_some()); // touch a → b is now LRU
        cache.insert(c.clone(), vec![0.7], 0);
        assert!(cache.get(&b).is_none(), "b evicted");
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_key_collision_cannot_serve_wrong_prediction() {
        let mut cache = PredictionCache::new(4);
        // Two inputs that quantize identically (same key) but differ
        // bitwise must not hit each other's entries.
        let x = vec![0.100_01f32];
        let y = vec![0.100_02f32];
        assert_eq!(input_key(&x), input_key(&y), "test premise: same bucket");
        cache.insert(x.clone(), vec![0.9], 1);
        assert!(cache.get(&y).is_none());
    }

    #[test]
    fn run_replays_a_stream_deterministically() {
        let m = model();
        let stream: Vec<TimedRequest> = rows(12, 4)
            .into_iter()
            .enumerate()
            .map(|(i, input)| TimedRequest::new(i as u64 * 50, input))
            .collect();
        let cfg = ServeConfig {
            max_batch: 4,
            max_delay_nanos: 120,
            ..ServeConfig::default()
        };
        let a = ServingEngine::run(&m, cfg.clone(), &stream).unwrap();
        let b = ServingEngine::run(&m, cfg, &stream).unwrap();
        assert_eq!(a, b, "replay is fully deterministic");
        assert_eq!(a.responses.iter().filter(|r| r.is_some()).count(), 12);
        let t = &a.telemetry;
        assert_eq!(t.shed + t.answered, t.submitted);
    }

    /// A model whose head carries random (non-zero) weights — a fresh
    /// classifier's zero head answers uniformly, which would make int8/f32
    /// output comparisons vacuous.
    fn nonuniform_model() -> ServableModel {
        let mut rng = StdRng::seed_from_u64(42);
        let backbone = taglets_nn::Mlp::new(&[4, 8], 0.0, &mut rng);
        let head = taglets_nn::Linear::new(8, 3, &mut rng);
        ServableModel::new(Classifier::from_parts(backbone, head))
    }

    #[test]
    fn int8_path_serves_deterministically_and_is_recorded_in_telemetry() {
        let m = nonuniform_model();
        let stream: Vec<TimedRequest> = rows(12, 5)
            .into_iter()
            .enumerate()
            .map(|(i, input)| TimedRequest::new(i as u64 * 50, input))
            .collect();
        let base = ServeConfig {
            max_batch: 4,
            max_delay_nanos: 120,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let int8_cfg = ServeConfig {
            path: InferencePath::Int8,
            ..base.clone()
        };
        let a = ServingEngine::run(&m, int8_cfg.clone(), &stream).unwrap();
        let b = ServingEngine::run(&m, int8_cfg, &stream).unwrap();
        assert_eq!(a, b, "int8 replay is fully deterministic");
        assert_eq!(a.telemetry.path, InferencePath::Int8);

        // The oracle run agrees on every argmax for this model: int8 may
        // perturb probabilities but must not flip serving decisions here.
        let oracle = ServingEngine::run(&m, base, &stream).unwrap();
        assert_eq!(oracle.telemetry.path, InferencePath::F32);
        let mut any_prob_differs = false;
        for (qr, fr) in a.responses.iter().zip(&oracle.responses) {
            let (q, f) = (qr.as_ref().unwrap(), fr.as_ref().unwrap());
            assert_eq!(q.predicted, f.predicted);
            any_prob_differs |= q.probs != f.probs;
        }
        assert!(any_prob_differs, "int8 is lossy, not a silent f32 alias");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let m = model();
        let clock = VirtualClock::new();
        for cfg in [
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_cap: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: MAX_BATCH_LIMIT + 1,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                ServingEngine::new(&m, cfg, &clock),
                Err(ServeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn input_dim_mismatch_is_rejected_not_queued() {
        let m = model();
        let clock = VirtualClock::new();
        let mut engine = ServingEngine::new(&m, ServeConfig::default(), &clock).unwrap();
        assert!(matches!(
            engine.submit(vec![1.0; 7]),
            Err(ServeError::InputDim {
                expected: 4,
                got: 7
            })
        ));
        assert_eq!(engine.pending_len(), 0);
        assert_eq!(engine.telemetry().rejected, 1);
    }

    #[test]
    fn histogram_buckets_are_log_scale_with_fixed_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_range(0), (0, 1));
        assert_eq!(LatencyHistogram::bucket_range(3), (4, 8));
        let mut h = LatencyHistogram::new();
        for n in [0, 1, 5, 5, 1000] {
            h.record(n);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.quantile_upper_nanos(0.5), 8);
        assert_eq!(h.quantile_upper_nanos(1.0), 1024);
        assert_eq!(LatencyHistogram::new().quantile_upper_nanos(0.99), 0);
    }

    #[test]
    fn telemetry_rates_are_well_defined() {
        let t = ServeTelemetry::new(4, 1, InferencePath::F32);
        assert_eq!(t.cache_hit_rate(), 0.0);
        assert_eq!(t.mean_batch_size(), 0.0);
    }
}
