//! Taglets: the trained pseudo-labelers produced by modules (Sec. 3.2).
//!
//! A *module* is a training method; its output — a classifier
//! `t_m : x ↦ y ∈ [0,1]^C` with `Σ_c y_c = 1` — is a *taglet*. Taglets are
//! only ever consulted for probability vectors; the distillation stage
//! combines them into pseudo labels.

use std::fmt;

use rand::rngs::StdRng;

use taglets_data::Image;
use taglets_nn::{Classifier, FitReport};
use taglets_scads::{AuxiliarySelection, PruneLevel, Scads};
use taglets_tensor::Tensor;

use taglets_data::{BackboneKind, ModelZoo, Task, TaskSplit};
use taglets_graph::ConceptId;

use crate::{CoreError, TagletsConfig};

/// A trained pseudo-labeler over the target label space.
pub trait Taglet: Send + Sync {
    /// The taglet's display name (its module of origin).
    fn name(&self) -> &str;

    /// Class-probability rows for a batch (`[n, C]`, each row on the
    /// simplex).
    fn predict_proba(&self, x: &Tensor) -> Tensor;

    /// Predicted class per row (argmax of [`Taglet::predict_proba`]).
    fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// Accuracy against ground-truth labels.
    fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f32 {
        taglets_nn::accuracy(&self.predict(x), labels)
    }
}

impl fmt::Debug for dyn Taglet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Taglet({})", self.name())
    }
}

/// A taglet backed by an ordinary classifier (Transfer, Multi-task,
/// FixMatch, and ZSL-KG all produce these).
#[derive(Debug, Clone)]
pub struct ClassifierTaglet {
    name: String,
    classifier: Classifier,
}

impl ClassifierTaglet {
    /// Wraps a trained classifier as a named taglet.
    pub fn new(name: impl Into<String>, classifier: Classifier) -> Self {
        ClassifierTaglet {
            name: name.into(),
            classifier,
        }
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }
}

impl Taglet for ClassifierTaglet {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_proba(&self, x: &Tensor) -> Tensor {
        self.classifier.predict_proba(x)
    }
}

/// Everything a module may consume while training (Sec. 3.2: a module takes
/// input data among `X`, `U`, and `R`).
///
/// The hidden labels of the unlabeled pool are deliberately absent.
pub struct ModuleContext<'a> {
    /// The target task definition (class names, graph alignment).
    pub task: &'a Task,
    /// The labeled/unlabeled/test split for this run.
    pub split: &'a TaskSplit,
    /// The SCADS (already extended with any out-of-vocabulary target
    /// classes).
    pub scads: &'a Scads<Image>,
    /// The pretrained-backbone zoo.
    pub zoo: &'a ModelZoo,
    /// Which backbone trainable modules should start from.
    pub backbone: BackboneKind,
    /// Pruning level applied to SCADS selection for this run.
    pub prune: PruneLevel,
    /// System configuration.
    pub config: &'a TagletsConfig,
    /// Resolved concept id of every target class, in label order.
    pub target_concepts: &'a [ConceptId],
    /// The selected auxiliary data `R`, computed once and shared by all
    /// modules.
    pub selection: &'a AuxiliarySelection<Image>,
    /// Unlabeled training images `U` (possibly capped per
    /// [`TagletsConfig::max_unlabeled`]).
    pub unlabeled: &'a Tensor,
}

impl ModuleContext<'_> {
    /// Number of target classes `C`.
    pub fn num_classes(&self) -> usize {
        self.task.num_classes()
    }

    /// The selected auxiliary data as a training matrix and labels; `None`
    /// when the selection is empty (e.g. a fully pruned SCADS).
    pub fn auxiliary_training_set(&self) -> Option<(Tensor, Vec<usize>)> {
        if self.selection.is_empty() {
            return None;
        }
        let rows: Vec<Vec<f32>> = self
            .selection
            .examples
            .iter()
            .map(|(img, _)| img.clone())
            .collect();
        let labels: Vec<usize> = self.selection.examples.iter().map(|(_, l)| *l).collect();
        Some((Tensor::stack_rows(&rows), labels))
    }
}

/// A trained taglet together with the training telemetry that produced it.
///
/// Modules used to return the bare `Box<dyn Taglet>` and drop the
/// [`FitReport`]s their training loops computed; the staged execution engine
/// keeps both, so per-module epoch losses and optimizer steps survive into
/// [`crate::RunTelemetry`].
#[derive(Debug)]
pub struct TrainedTaglet {
    /// The trained pseudo-labeler.
    pub taglet: Box<dyn Taglet>,
    /// Merged telemetry of every training phase the module ran (empty for
    /// training-free modules such as ZSL-KG).
    pub report: FitReport,
}

impl TrainedTaglet {
    /// Pairs a taglet with its training report.
    pub fn new(taglet: Box<dyn Taglet>, report: FitReport) -> Self {
        TrainedTaglet { taglet, report }
    }

    /// A taglet that performed no gradient training (empty report).
    pub fn untrained(taglet: Box<dyn Taglet>) -> Self {
        TrainedTaglet {
            taglet,
            report: FitReport::default(),
        }
    }
}

/// A training method that can be plugged into the system (Sec. 3.2's
/// "modular framework is extensible").
///
/// Implementations must be `Send + Sync`: the execution engine
/// ([`crate::exec`]) may train independent modules on scoped worker threads,
/// each holding a shared reference to the module and the context.
pub trait TagletModule: Send + Sync {
    /// The module's display name (used in reports and figures).
    fn name(&self) -> &str;

    /// Trains the module on the context's data and returns its taglet plus
    /// the telemetry of every training phase.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] when required inputs are missing
    /// (e.g. no labeled data for a supervised module).
    fn train(&self, ctx: &ModuleContext<'_>, rng: &mut StdRng) -> Result<TrainedTaglet, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classifier_taglet_rows_are_simplex() {
        let mut rng = StdRng::seed_from_u64(0);
        let clf = Classifier::from_dims(&[6, 8], 4, 0.0, &mut rng);
        let t = ClassifierTaglet::new("unit", clf);
        let x = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let p = t.predict_proba(&x);
        assert_eq!(p.shape(), &[5, 4]);
        for row in p.rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
        assert_eq!(t.name(), "unit");
        assert_eq!(t.predict(&x).len(), 5);
    }

    #[test]
    fn context_and_results_cross_thread_boundaries() {
        // The executor shares one ModuleContext across scoped workers and
        // sends each worker's TrainedTaglet back to the orchestrator.
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<ModuleContext<'_>>();
        assert_send::<TrainedTaglet>();
        assert_send::<CoreError>();
    }

    #[test]
    fn taglet_trait_objects_are_debuggable() {
        let mut rng = StdRng::seed_from_u64(1);
        let clf = Classifier::from_dims(&[3, 4], 2, 0.0, &mut rng);
        let t: Box<dyn Taglet> = Box::new(ClassifierTaglet::new("dbg", clf));
        assert_eq!(format!("{:?}", &*t), "Taglet(dbg)");
    }
}
