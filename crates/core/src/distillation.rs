//! The distillation stage (Sec. 3.3): pseudo-label the unlabeled pool with
//! the taglet ensemble, then train one servable end model on pseudo-labeled
//! and labeled data with the soft cross-entropy of Eq. 7.

use rand::rngs::StdRng;

use taglets_data::{BackboneKind, ModelZoo};
use taglets_nn::{fit_soft, Classifier, FitConfig, FitReport};
use taglets_tensor::{Adam, AdamConfig, Executor, LrSchedule, Tensor};

use crate::EndModelConfig;

/// Builds the distillation training set: pseudo-labeled unlabeled examples
/// `P` stacked with the labeled examples `X` (as one-hot rows).
///
/// Returns `(inputs, soft_targets)`.
///
/// # Panics
///
/// Panics if row counts disagree, the label spaces differ, or both sources
/// are empty.
pub fn distillation_set(
    unlabeled_x: &Tensor,
    pseudo_labels: &Tensor,
    labeled_x: &Tensor,
    labeled_y: &[usize],
    num_classes: usize,
) -> (Tensor, Tensor) {
    assert_eq!(
        unlabeled_x.rows(),
        pseudo_labels.rows(),
        "one pseudo label per row"
    );
    assert_eq!(
        labeled_x.rows(),
        labeled_y.len(),
        "one label per labeled row"
    );
    if unlabeled_x.rows() > 0 {
        assert_eq!(
            pseudo_labels.cols(),
            num_classes,
            "pseudo-label width mismatch"
        );
    }
    let total = unlabeled_x.rows() + labeled_x.rows();
    assert!(total > 0, "distillation needs at least one example");

    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(total);
    let mut targets: Vec<Vec<f32>> = Vec::with_capacity(total);
    for (row, p) in unlabeled_x.rows_iter().zip(pseudo_labels.rows_iter()) {
        rows.push(row.to_vec());
        targets.push(p.to_vec());
    }
    for (row, &y) in labeled_x.rows_iter().zip(labeled_y) {
        assert!(y < num_classes, "label out of range");
        rows.push(row.to_vec());
        let mut one_hot = vec![0.0f32; num_classes];
        one_hot[y] = 1.0;
        targets.push(one_hot);
    }
    (Tensor::stack_rows(&rows), Tensor::stack_rows(&targets))
}

/// Trains the end model `h` (Eq. 7): a fresh pretrained backbone fine-tuned
/// on the distillation set with soft cross-entropy, Adam, and the paper's
/// milestone decay. Returns the classifier together with its fit telemetry.
///
/// Distillation trains a *single* model, so unlike the module stage (which
/// parallelizes across modules) the workers go to intra-op row-block
/// parallelism inside the training matmuls via `executor` — bitwise
/// identical to serial at any worker count.
pub fn train_end_model(
    zoo: &ModelZoo,
    backbone: BackboneKind,
    inputs: &Tensor,
    soft_targets: &Tensor,
    num_classes: usize,
    cfg: &EndModelConfig,
    executor: &Executor,
    rng: &mut StdRng,
) -> (Classifier, FitReport) {
    let mut clf = Classifier::new(zoo.get(backbone).backbone(), num_classes, rng);
    let steps_per_epoch = inputs
        .rows()
        .div_ceil(cfg.batch_size.min(inputs.rows()).max(1));
    let milestones: Vec<usize> = cfg
        .milestones
        .iter()
        .map(|&e| e * steps_per_epoch)
        .collect();
    let fit = FitConfig::new(cfg.epochs, cfg.batch_size, cfg.lr)
        .with_schedule(LrSchedule::milestones(cfg.lr, milestones, 0.1))
        .with_executor(*executor);
    let mut opt = Adam::new(AdamConfig {
        lr: cfg.lr,
        weight_decay: cfg.weight_decay,
        ..AdamConfig::default()
    });
    let report = fit_soft(&mut clf, inputs, soft_targets, &fit, &mut opt, rng);
    (clf, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distillation_set_stacks_pseudo_then_one_hot() {
        let u = Tensor::from_rows(&[&[1.0, 1.0]]);
        let p = Tensor::from_rows(&[&[0.6, 0.4]]);
        let x = Tensor::from_rows(&[&[2.0, 2.0]]);
        let (inputs, targets) = distillation_set(&u, &p, &x, &[1], 2);
        assert_eq!(inputs.rows(), 2);
        assert_eq!(targets.row(0), &[0.6, 0.4]);
        assert_eq!(targets.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn distillation_set_works_without_unlabeled_data() {
        let u = Tensor::zeros(&[0, 2]);
        let p = Tensor::zeros(&[0, 3]);
        let x = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let (inputs, targets) = distillation_set(&u, &p, &x, &[0, 2], 3);
        assert_eq!(inputs.rows(), 2);
        assert_eq!(targets.row(1), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn end_model_learns_its_pseudo_labels() {
        use taglets_data::{ConceptUniverse, ModelZoo, UniverseConfig, ZooConfig};
        use taglets_graph::SyntheticGraphConfig;

        let universe = ConceptUniverse::new(UniverseConfig {
            graph: SyntheticGraphConfig {
                num_concepts: 60,
                ..Default::default()
            },
            ..Default::default()
        })
        .expect("universe builds");
        let corpus = universe.build_corpus(8, 0);
        let zoo = ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default())
            .expect("corpus is non-empty");
        let mut rng = StdRng::seed_from_u64(0);

        // Synthetic two-class problem from two distant concepts.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut gen_rng = StdRng::seed_from_u64(1);
        for i in 0..40 {
            let concept = taglets_graph::ConceptId(if i % 2 == 0 { 2 } else { 55 });
            rows.push(universe.render(concept, taglets_data::Domain::Natural, 1.0, &mut gen_rng));
            let mut t = vec![0.0f32; 2];
            t[i % 2] = 1.0;
            targets.push(t);
        }
        let inputs = Tensor::stack_rows(&rows);
        let soft = Tensor::stack_rows(&targets);
        let (clf, report) = train_end_model(
            &zoo,
            BackboneKind::ResNet50ImageNet1k,
            &inputs,
            &soft,
            2,
            &EndModelConfig::default(),
            &Executor::new(taglets_tensor::Concurrency::Threads(2)),
            &mut rng,
        );
        assert!(report.steps > 0, "distillation telemetry must be populated");
        let preds = clf.predict(&inputs);
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let acc = taglets_nn::accuracy(&preds, &labels);
        assert!(acc > 0.9, "end model should fit its targets: {acc}");
    }
}
