//! Unsupervised ensembling of taglets into soft pseudo labels
//! (Sec. 3.3, Eq. 6).
//!
//! For an example `x`, the taglets' probability vectors are stacked into a
//! vote matrix `V ∈ [0,1]^{|T|×C}` and averaged into the soft pseudo label
//! `p_x = (1/|T|) Σ_t V_t`.

use taglets_tensor::Tensor;

use crate::Taglet;

/// An unweighted average ensemble over a set of taglets.
pub struct Ensemble<'a> {
    taglets: &'a [Box<dyn Taglet>],
}

impl std::fmt::Debug for Ensemble<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.taglets.iter().map(|t| t.name()).collect();
        write!(f, "Ensemble{names:?}")
    }
}

impl<'a> Ensemble<'a> {
    /// Builds an ensemble over the given taglets.
    ///
    /// # Panics
    ///
    /// Panics if `taglets` is empty.
    pub fn new(taglets: &'a [Box<dyn Taglet>]) -> Self {
        assert!(!taglets.is_empty(), "an ensemble needs at least one taglet");
        Ensemble { taglets }
    }

    /// Number of ensembled taglets `|T|`.
    pub fn len(&self) -> usize {
        self.taglets.len()
    }

    /// `false` — constructing an empty ensemble panics.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The vote matrix `V ∈ [0,1]^{|T|×C}` for a single example
    /// (one row per taglet).
    pub fn vote_matrix(&self, x: &[f32]) -> Tensor {
        let batch = Tensor::from_slice(x).reshaped(&[1, x.len()]);
        let rows: Vec<Vec<f32>> = self
            .taglets
            .iter()
            .map(|t| t.predict_proba(&batch).into_vec())
            .collect();
        Tensor::stack_rows(&rows)
    }

    /// Soft pseudo labels for a batch: the row-wise mean of all taglets'
    /// probability outputs (Eq. 6). Rows remain on the simplex.
    pub fn predict_proba(&self, x: &Tensor) -> Tensor {
        let mut acc = self.taglets[0].predict_proba(x);
        for t in &self.taglets[1..] {
            acc.add_assign(&t.predict_proba(x));
        }
        acc.scale_assign(1.0 / self.taglets.len() as f32);
        acc
    }

    /// Weighted soft pseudo labels: `p_x = Σ_t w_t V_t / Σ_t w_t`.
    ///
    /// This is an *extension* beyond the paper (which uses the unweighted
    /// average of Eq. 6); it lets callers down-weight modules known to be
    /// weak on a task, e.g. by validation accuracy on the labeled set.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`, any weight is negative, or
    /// all weights are zero.
    pub fn predict_proba_weighted(&self, x: &Tensor, weights: &[f32]) -> Tensor {
        assert_eq!(weights.len(), self.taglets.len(), "one weight per taglet");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut acc = Tensor::zeros(&[x.rows(), self.taglets[0].predict_proba(x).cols()]);
        let mut acc_set = false;
        for (t, &w) in self.taglets.iter().zip(weights) {
            // Exact-zero weights mean "taglet disabled" (a sentinel the
            // caller sets, not an arithmetic result). lint: allow(TL004)
            if w == 0.0 {
                continue;
            }
            let p = t.predict_proba(x);
            if !acc_set {
                acc = p.scale(w / total);
                acc_set = true;
            } else {
                acc.add_scaled(&p, w / total);
            }
        }
        acc
    }

    /// Accuracy-derived weights: each taglet's accuracy on a (small)
    /// labeled validation set, floored at a tiny epsilon so no taglet is
    /// silenced entirely.
    pub fn accuracy_weights(&self, x: &Tensor, labels: &[usize]) -> Vec<f32> {
        self.taglets
            .iter()
            .map(|t| t.accuracy(x, labels).max(1e-3))
            .collect()
    }

    /// Hard predictions (argmax of the soft pseudo labels).
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// Ensemble accuracy against ground truth.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f32 {
        taglets_nn::accuracy(&self.predict(x), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifierTaglet;
    use rand::{rngs::StdRng, SeedableRng};
    use taglets_nn::Classifier;

    fn taglet(seed: u64) -> Box<dyn Taglet> {
        let mut rng = StdRng::seed_from_u64(seed);
        Box::new(ClassifierTaglet::new(
            format!("t{seed}"),
            Classifier::from_dims(&[5, 6], 3, 0.0, &mut rng),
        ))
    }

    #[test]
    fn pseudo_labels_stay_on_the_simplex() {
        let taglets = vec![taglet(0), taglet(1), taglet(2)];
        let e = Ensemble::new(&taglets);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let p = e.predict_proba(&x);
        assert_eq!(p.shape(), &[7, 3]);
        for row in p.rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn ensemble_of_identical_taglets_equals_the_taglet() {
        let taglets = vec![taglet(4), taglet(4), taglet(4)];
        let e = Ensemble::new(&taglets);
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let single = taglets[0].predict_proba(&x);
        let combined = e.predict_proba(&x);
        for (a, b) in single.data().iter().zip(combined.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn ensemble_is_order_invariant() {
        let a = vec![taglet(1), taglet(2), taglet(3)];
        let b = vec![taglet(3), taglet(1), taglet(2)];
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let pa = Ensemble::new(&a).predict_proba(&x);
        let pb = Ensemble::new(&b).predict_proba(&x);
        for (u, v) in pa.data().iter().zip(pb.data()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn vote_matrix_has_one_row_per_taglet() {
        let taglets = vec![taglet(5), taglet(6)];
        let e = Ensemble::new(&taglets);
        let v = e.vote_matrix(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(v.shape(), &[2, 3]);
        for row in v.rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn weighted_with_one_hot_weight_selects_that_taglet() {
        let taglets = vec![taglet(1), taglet(2), taglet(3)];
        let e = Ensemble::new(&taglets);
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let selected = e.predict_proba_weighted(&x, &[0.0, 1.0, 0.0]);
        let direct = taglets[1].predict_proba(&x);
        for (a, b) in selected.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_with_uniform_weights_matches_unweighted() {
        let taglets = vec![taglet(4), taglet(5)];
        let e = Ensemble::new(&taglets);
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let weighted = e.predict_proba_weighted(&x, &[2.0, 2.0]);
        let plain = e.predict_proba(&x);
        for (a, b) in weighted.data().iter().zip(plain.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn accuracy_weights_are_positive_and_per_taglet() {
        let taglets = vec![taglet(6), taglet(7), taglet(8)];
        let e = Ensemble::new(&taglets);
        let mut rng = StdRng::seed_from_u64(14);
        let x = Tensor::randn(&[10, 5], 1.0, &mut rng);
        let y: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let w = e.accuracy_weights(&x, &y);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn empty_ensemble_panics() {
        let taglets: Vec<Box<dyn Taglet>> = Vec::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Ensemble::new(&taglets).len()
        }));
        assert!(r.is_err());
    }
}
