//! The staged execution engine's executor — re-exported from
//! `taglets_tensor::exec`, its single home.
//!
//! The executor originally lived here; it moved down the dependency stack
//! so the blocked matmul kernels in `taglets_tensor::kernels` can dispatch
//! deterministic intra-op row-block parallelism through the same machinery
//! the system stages use for inter-module parallelism. This module keeps
//! the `core::exec` paths (`taglets_core::exec::Executor` etc.) working —
//! they are the *same types*, so the `TAGLETS_THREADS` override and the
//! determinism contract (parallel bitwise identical to serial, asserted by
//! `tests/exec_determinism.rs`) are unchanged.
//!
//! The paper's Fig. 2 pipeline has exactly one embarrassingly parallel
//! stage — module training — because the four modules share a read-only
//! [`crate::ModuleContext`] and never communicate. [`Executor::run`] runs
//! `n` independent indexed jobs on scoped workers and reassembles results
//! **in index order**, so callers observe the same output as a serial loop;
//! combined with each job deriving its own RNG from the run seed
//! (`seed ^ name_hash(name)` for modules), parallel execution is bitwise
//! identical to serial execution.

pub use taglets_tensor::exec::{Concurrency, Executor};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_executor_is_the_tensor_crate_type() {
        // The shim must re-export, not redefine: function types prove the
        // paths name one type.
        fn takes_tensor_exec(_: taglets_tensor::Executor) {}
        takes_tensor_exec(Executor::new(Concurrency::Serial));
        let out = Executor::new(Concurrency::Threads(2)).map(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
