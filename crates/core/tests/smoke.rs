//! End-to-end smoke test: the full TAGLETS pipeline on a reduced universe.

use std::time::Instant;

use taglets_core::{TagletsConfig, TagletsSystem};
use taglets_data::{
    standard_tasks, BackboneKind, ConceptUniverse, ModelZoo, UniverseConfig, ZooConfig,
};
use taglets_graph::SyntheticGraphConfig;
use taglets_scads::PruneLevel;

#[test]
fn full_pipeline_produces_a_working_end_model() {
    let t0 = Instant::now();
    let mut universe = ConceptUniverse::new(UniverseConfig {
        graph: SyntheticGraphConfig {
            num_concepts: 400,
            ..SyntheticGraphConfig::default()
        },
        ..UniverseConfig::default()
    })
    .expect("universe builds");
    let tasks = standard_tasks(&mut universe).expect("standard tasks build");
    let corpus = universe.build_corpus(15, 0);
    let scads = universe.build_scads(&corpus).expect("corpus is non-empty");
    let zoo =
        ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default()).expect("corpus is non-empty");
    eprintln!("setup: {:?}", t0.elapsed());

    let t1 = Instant::now();
    let config = TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k);
    let system = TagletsSystem::prepare(&scads, &zoo, config);
    eprintln!("prepare (zsl-kg pretraining): {:?}", t1.elapsed());

    let fmd = tasks.iter().find(|t| t.name == "flickr_materials").unwrap();
    let split = fmd.split(0, 5);

    let t2 = Instant::now();
    let run = system.run(fmd, &split, PruneLevel::NoPruning, 0).unwrap();
    eprintln!("taglets run (fmd, 5-shot): {:?}", t2.elapsed());

    assert_eq!(run.taglets.len(), 4);
    assert!(run.num_auxiliary_examples > 0);
    let acc = run.end_model.accuracy(&split.test_x, &split.test_y);
    let chance = 1.0 / fmd.num_classes() as f32;
    eprintln!("end model accuracy: {acc}");
    for t in &run.taglets {
        eprintln!(
            "  {}: {}",
            t.name(),
            t.accuracy(&split.test_x, &split.test_y)
        );
    }
    eprintln!(
        "  ensemble: {}",
        run.ensemble().accuracy(&split.test_x, &split.test_y)
    );
    assert!(acc > 2.0 * chance, "end model must beat chance: {acc}");

    // ISSUE 10 acceptance: the int8 row-quantized serving path must agree
    // with the f32 oracle on ≥ 99% of argmax predictions on a standard
    // eval task's end model (not just on synthetic weights — this is the
    // distilled model production serving would actually quantize).
    let mut scratch = taglets_nn::InferScratch::new();
    let f32_probs = run
        .end_model
        .predict_proba_batched(&split.test_x, &mut scratch);
    let q_probs = run
        .end_model
        .predict_proba_quantized(&split.test_x, &mut scratch);
    let rows = split.test_x.shape()[0];
    let agree = (0..rows)
        .filter(|&r| {
            taglets_tensor::argmax_slice(f32_probs.row(r))
                == taglets_tensor::argmax_slice(q_probs.row(r))
        })
        .count();
    let agreement = agree as f32 / rows as f32;
    eprintln!("int8/f32 argmax agreement on fmd test split: {agreement}");
    assert!(
        agreement >= 0.99,
        "int8 argmax agreement {agreement} below 0.99 on a standard eval task"
    );
}

#[test]
fn grocery_oov_classes_are_handled_via_scads_extension() {
    let mut universe = ConceptUniverse::new(UniverseConfig {
        graph: SyntheticGraphConfig {
            num_concepts: 400,
            ..SyntheticGraphConfig::default()
        },
        ..UniverseConfig::default()
    })
    .expect("universe builds");
    let tasks = standard_tasks(&mut universe).expect("standard tasks build");
    let corpus = universe.build_corpus(10, 0);
    let scads = universe.build_scads(&corpus).expect("corpus is non-empty");
    let zoo =
        ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default()).expect("corpus is non-empty");
    assert!(scads.graph().find("oatghurt").is_none());

    let config = TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k);
    let system = TagletsSystem::prepare(&scads, &zoo, config);
    let grocery = tasks.iter().find(|t| t.name == "grocery_store").unwrap();
    let split = grocery.split(0, 1);
    let run = system
        .run(grocery, &split, PruneLevel::NoPruning, 0)
        .unwrap();
    let acc = run.end_model.accuracy(&split.test_x, &split.test_y);
    eprintln!("grocery 1-shot end model accuracy: {acc}");
    assert!(acc > 2.0 / 42.0, "must beat chance on grocery: {acc}");
    // The original SCADS is untouched (extension happens on a clone).
    assert!(scads.graph().find("oatghurt").is_none());
}
