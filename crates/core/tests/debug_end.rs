//! Scratch diagnostics for the end-model training (run with --ignored).

use taglets_core::distillation::{distillation_set, train_end_model};
use taglets_core::{TagletsConfig, TagletsSystem};
use taglets_data::{
    standard_tasks, BackboneKind, ConceptUniverse, ModelZoo, UniverseConfig, ZooConfig,
};
use taglets_graph::SyntheticGraphConfig;
use taglets_scads::PruneLevel;

#[test]
#[ignore = "diagnostic only"]
fn end_model_diagnostics() {
    let mut universe = ConceptUniverse::new(UniverseConfig {
        graph: SyntheticGraphConfig {
            num_concepts: 400,
            ..SyntheticGraphConfig::default()
        },
        ..UniverseConfig::default()
    })
    .expect("universe builds");
    let tasks = standard_tasks(&mut universe).expect("standard tasks build");
    let corpus = universe.build_corpus(15, 0);
    let scads = universe.build_scads(&corpus).expect("corpus is non-empty");
    let zoo =
        ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default()).expect("corpus is non-empty");
    let config = TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k);
    let system = TagletsSystem::prepare(&scads, &zoo, config.clone());
    let fmd = tasks.iter().find(|t| t.name == "flickr_materials").unwrap();
    let split = fmd.split(0, 5);
    let run = system.run(fmd, &split, PruneLevel::NoPruning, 0).unwrap();

    // Pseudo-label quality on the unlabeled pool (vs hidden ground truth,
    // using the capped pool means labels don't align; recompute on full).
    let ens = run.ensemble();
    let pseudo_acc = ens.accuracy(&split.unlabeled_x, &split.unlabeled_y);
    eprintln!("pseudo-label accuracy on unlabeled pool: {pseudo_acc}");
    let probs = ens.predict_proba(&split.unlabeled_x);
    let mean_max: f32 = probs
        .rows_iter()
        .map(|r| r.iter().cloned().fold(0.0f32, f32::max))
        .sum::<f32>()
        / probs.rows() as f32;
    eprintln!("mean max pseudo-prob: {mean_max}");

    // Re-train the end model manually and watch train agreement.
    let (inputs, targets) = distillation_set(
        &run.unlabeled_used,
        &run.pseudo_labels,
        &split.labeled_x,
        &split.labeled_y,
        fmd.num_classes(),
    );
    let mut rng = rand::SeedableRng::seed_from_u64(0);
    for (label, cfg) in [
        ("default", config.end_model.clone()),
        (
            "lr=2e-3",
            taglets_core::EndModelConfig {
                lr: 2e-3,
                ..config.end_model.clone()
            },
        ),
        (
            "epochs=60",
            taglets_core::EndModelConfig {
                epochs: 60,
                ..config.end_model.clone()
            },
        ),
        (
            "lr=2e-3 epochs=60",
            taglets_core::EndModelConfig {
                lr: 2e-3,
                epochs: 60,
                ..config.end_model.clone()
            },
        ),
        (
            "lr=2e-3 epochs=40 ms30",
            taglets_core::EndModelConfig {
                lr: 2e-3,
                epochs: 40,
                milestones: vec![30],
                ..config.end_model.clone()
            },
        ),
        (
            "lr=3e-3 epochs=40 ms30",
            taglets_core::EndModelConfig {
                lr: 3e-3,
                epochs: 40,
                milestones: vec![30],
                ..config.end_model.clone()
            },
        ),
    ] {
        let (clf, _report) = train_end_model(
            &zoo,
            BackboneKind::ResNet50ImageNet1k,
            &inputs,
            &targets,
            fmd.num_classes(),
            &cfg,
            &taglets_core::exec::Executor::serial(),
            &mut rng,
        );
        let hard_targets = targets.argmax_rows();
        let preds = clf.predict(&inputs);
        let agree = taglets_nn::accuracy(&preds, &hard_targets);
        let test_acc = clf.accuracy(&split.test_x, &split.test_y);
        eprintln!("{label}: train-agreement {agree:.3}, test acc {test_acc:.3}");
    }
}
