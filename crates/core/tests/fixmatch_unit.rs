//! Unit tests of the shared FixMatch loop outside the full pipeline.

use rand::{rngs::StdRng, SeedableRng};

use taglets_core::{fixmatch_train, FixMatchConfig};
use taglets_data::Augmenter;
use taglets_nn::{Classifier, Module};
use taglets_tensor::Tensor;

fn blobs(n_per: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..2usize {
        let center = if class == 0 { 2.5 } else { -2.5 };
        for _ in 0..n_per {
            let noise = Tensor::randn(&[6], 0.6, &mut rng);
            rows.push(
                noise
                    .data()
                    .iter()
                    .map(|v| v + center)
                    .collect::<Vec<f32>>(),
            );
            labels.push(class);
        }
    }
    (Tensor::stack_rows(&rows), labels)
}

#[test]
fn empty_unlabeled_pool_is_a_no_op() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut clf = Classifier::from_dims(&[6, 8], 2, 0.0, &mut rng);
    let before = clf.clone();
    let (x, y) = blobs(3, 1);
    fixmatch_train(
        &mut clf,
        &x,
        &y,
        &Tensor::zeros(&[0, 6]),
        &FixMatchConfig::default(),
        &Augmenter::default(),
        &mut rng,
    );
    assert_eq!(clf, before, "no unlabeled data → no updates");
}

#[test]
fn empty_labeled_set_is_a_no_op() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut clf = Classifier::from_dims(&[6, 8], 2, 0.0, &mut rng);
    let before = clf.clone();
    let (u, _) = blobs(5, 2);
    fixmatch_train(
        &mut clf,
        &Tensor::zeros(&[0, 6]),
        &[],
        &u,
        &FixMatchConfig::default(),
        &Augmenter::default(),
        &mut rng,
    );
    assert_eq!(clf, before, "no labeled data → no updates");
}

#[test]
fn unlabeled_data_improves_a_weak_classifier() {
    // 1 labeled example per class + a large unlabeled pool: FixMatch should
    // propagate labels through the cluster structure.
    let mut rng = StdRng::seed_from_u64(3);
    let (labeled_x, labeled_y) = blobs(1, 4);
    let (unlabeled, _) = blobs(60, 5);
    let (test_x, test_y) = blobs(40, 6);

    let train = |use_unlabeled: bool, rng: &mut StdRng| {
        let mut clf = Classifier::from_dims(&[6, 8], 2, 0.0, rng);
        // A brief supervised warm start in both arms.
        let mut opt = taglets_tensor::Sgd::with_momentum(0.003, 0.9);
        taglets_nn::fit_hard(
            &mut clf,
            &labeled_x,
            &labeled_y,
            &taglets_nn::FitConfig::new(3, 8, 0.003),
            &mut opt,
            rng,
        );
        if use_unlabeled {
            fixmatch_train(
                &mut clf,
                &labeled_x,
                &labeled_y,
                &unlabeled,
                &FixMatchConfig::default(),
                &Augmenter::default(),
                rng,
            );
        }
        clf.accuracy(&test_x, &test_y)
    };
    let with = train(true, &mut rng);
    let without = train(false, &mut rng);
    assert!(
        with >= without,
        "fixmatch must not hurt on cleanly clustered data: {with} vs {without}"
    );
    assert!(
        with > 0.9,
        "two distant blobs should be nearly solved: {with}"
    );
}

#[test]
fn confidence_threshold_gates_the_unlabeled_loss() {
    // With τ = 1.0 no pseudo label ever passes the gate, so FixMatch reduces
    // to supervised training on the (weakly augmented) labeled batch only.
    let mut rng = StdRng::seed_from_u64(7);
    let (labeled_x, labeled_y) = blobs(2, 8);
    let (unlabeled, _) = blobs(20, 9);
    let cfg = FixMatchConfig {
        tau: 1.0,
        epochs: 2,
        ..FixMatchConfig::default()
    };
    let mut clf = Classifier::from_dims(&[6, 8], 2, 0.0, &mut rng);
    let before_params: Vec<Tensor> = clf.parameters().into_iter().cloned().collect();
    fixmatch_train(
        &mut clf,
        &labeled_x,
        &labeled_y,
        &unlabeled,
        &cfg,
        &Augmenter::default(),
        &mut rng,
    );
    // Parameters still move (supervised part), so this is not a no-op...
    assert_ne!(
        clf.parameters().into_iter().cloned().collect::<Vec<_>>(),
        before_params
    );
}
