//! End-to-end fixture test for the determinism taint analysis: scans a
//! miniature workspace (`tests/fixtures/taint_ws/`) shaped like the real
//! one and asserts TL007 fires with the full multi-hop call chain from
//! `TagletsSystem::run` down to the function holding `Instant::now()`.

use std::path::PathBuf;

use taglets_lint::{scan_workspace, Rule};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("taint_ws")
}

#[test]
fn tl007_reports_a_multi_hop_chain_from_the_seeded_root() {
    let violations = scan_workspace(&fixture_root()).expect("fixture workspace scans");
    let tl007: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::Tl007)
        .collect();
    assert_eq!(
        tl007.len(),
        3,
        "one reachable time source per fixture root expected, got: {violations:?}"
    );

    let v = tl007
        .iter()
        .find(|v| v.file == "crates/core/src/system.rs")
        .expect("system.rs chain present");
    assert!(
        v.excerpt.contains("Instant::now"),
        "excerpt names the source: {}",
        v.excerpt
    );

    // The chain must walk root → … → containing function with at least
    // three hops, so the diagnostic explains *how* the seeded path reaches
    // the wall clock.
    let names: Vec<&str> = v.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "TagletsSystem::run",
            "TagletsSystem::train_modules",
            "measure_stage",
            "stage_clock",
        ]
    );
    assert!(v.chain.len() >= 3, "chain has at least three hops");
    for hop in &v.chain {
        assert_eq!(hop.file, "crates/core/src/system.rs");
        assert!(hop.line >= 1);
    }
}

#[test]
fn tl007_roots_the_serving_engine_run_path() {
    // `ServingEngine::run` is a seeded taint root (ISSUE 4): an
    // `Instant::now()` injected anywhere in the serve path must surface as
    // a TL007 chain from the root down to the offending function.
    let violations = scan_workspace(&fixture_root()).expect("fixture workspace scans");
    let v = violations
        .iter()
        .find(|v| v.rule == Rule::Tl007 && v.file == "crates/core/src/serve.rs")
        .expect("serve.rs chain present");
    assert!(
        v.excerpt.contains("Instant::now"),
        "excerpt names the source: {}",
        v.excerpt
    );
    let names: Vec<&str> = v.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["ServingEngine::run", "flush_deadline", "batch_clock"]
    );
    for hop in &v.chain {
        assert_eq!(hop.file, "crates/core/src/serve.rs");
    }
}

#[test]
fn tl007_roots_the_shard_boundary_exchange() {
    // `exchange_boundaries` is a seeded taint root (ISSUE 7): the fixed-
    // order halo exchange between Jacobi sweeps is exactly where stray
    // nondeterminism would silently break the sharded-vs-flat bitwise
    // guarantee, so an `Instant::now()` anywhere below it must surface as a
    // TL007 chain from the root down to the offending function.
    let violations = scan_workspace(&fixture_root()).expect("fixture workspace scans");
    let v = violations
        .iter()
        .find(|v| v.rule == Rule::Tl007 && v.file == "crates/graph/src/partition.rs")
        .expect("partition.rs chain present");
    assert!(
        v.excerpt.contains("Instant::now"),
        "excerpt names the source: {}",
        v.excerpt
    );
    let names: Vec<&str> = v.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["exchange_boundaries", "refresh_halo_rows", "halo_clock"]
    );
    for hop in &v.chain {
        assert_eq!(hop.file, "crates/graph/src/partition.rs");
    }
}

#[test]
fn unreachable_nondeterminism_in_the_fixture_stays_silent() {
    // The fixture has no orphan sources, so TL007 count is exactly the one
    // reachable site; nothing else in the mini-workspace may fire TL008/9.
    let violations = scan_workspace(&fixture_root()).expect("fixture workspace scans");
    assert!(
        violations
            .iter()
            .all(|v| !matches!(v.rule, Rule::Tl008 | Rule::Tl009)),
        "fixture must be free of map-iteration and unseeded-RNG findings: {violations:?}"
    );
}
