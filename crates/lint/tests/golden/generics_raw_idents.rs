// Token classes the hot-path stage's extraction walks past: turbofish
// const-generic arguments (brace-expression form), raw identifiers, and
// the inclusive-range operator — none of which may smear into the
// neighboring tokens.
struct Foo<const N: usize>;

fn r#fn(r#type: usize) -> usize {
    let widened = Foo::<{ N + 1 }>::default();
    let exact = Foo::<LEN>::default();
    for i in 0..=r#type {
        let _ = widened;
        let _ = exact;
        let _ = i;
    }
    r#type
}
