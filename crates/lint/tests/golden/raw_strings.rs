fn raw() {
    let a = r"plain raw \n not an escape";
    let b = r#"has "quotes" inside"#;
    let c = r##"nested "# terminator"##;
    let d = r#match;
    let e = "normal \"escaped\" string";
}
