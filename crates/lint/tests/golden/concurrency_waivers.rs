// Token classes the concurrency stage depends on: `unsafe` as a bare
// keyword vs the `unsafe_code` ident, Atomic types, weak orderings,
// compound assignment operators, and the reasoned waiver directives.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

static mut LEGACY: usize = 0;

fn claim(next: &AtomicUsize, total: &mut f32, chunk: f32) -> usize {
    // lint: concurrency(claim counter only orders claiming)
    let i = next.fetch_add(1, Ordering::Relaxed);
    let order = std::cmp::Ordering::Less;
    *total += chunk;
    // lint: unsafe(fixture: pointer validity argued by the caller)
    let v = unsafe { *(&LEGACY as *const usize) };
    i + v
}
