/* outer /* inner /* deepest */ still inner */ outer again */
fn after() -> u8 {
    let x = 1; /* trailing /* nested */ comment */ let y = 2;
    // line comment with /* no effect
    x
}
