fn numbers(t: (u8, (u8, u8))) {
    let a = 1.5;
    let b = 1.;
    let c = 1e3;
    let d = 2f32;
    let e = 0..10;
    let f = 1..=2;
    let g = t.0;
    let h = t.1 .0;
    let i = 0xff;
    let j = 1_000u64;
    let k = a.max(1.0);
}
