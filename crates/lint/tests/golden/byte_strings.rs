fn bytes() {
    let a = b"raw bytes \x00";
    let b = br#"byte raw with "quotes""#;
    let c = b'x';
    let d = b'\n';
}
