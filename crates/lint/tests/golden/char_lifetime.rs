fn chars<'a>(x: &'a str) -> char {
    let c = 'a';
    let nl = '\n';
    let quote = '\'';
    let s: &'static str = "s";
    let _ = x;
    c
}
