//! Round-trip test for baseline regeneration (the `UPDATE_BASELINE=1` /
//! `--update-baseline` path): regenerating over a workspace with live
//! violations must produce a baseline that a subsequent `--check`-style
//! diff reads back as exactly clean — no regressions, no stale entries.

use std::fs;
use std::path::{Path, PathBuf};

use taglets_lint::{baseline, load_baseline, scan_workspace, update_baseline};

/// Copies the hotpath fixture workspace (it has live TL014–TL016
/// violations) into a scratch dir so the regeneration can write freely.
fn scratch_workspace() -> PathBuf {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("hotpath_ws");
    let dst = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("update_baseline_ws");
    if dst.exists() {
        fs::remove_dir_all(&dst).expect("stale scratch removed");
    }
    copy_tree(&src, &dst);
    dst
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("scratch dir created");
    for entry in fs::read_dir(src).expect("fixture readable") {
        let entry = entry.expect("fixture entry");
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("fixture file copied");
        }
    }
}

#[test]
fn regenerated_baseline_round_trips_to_a_clean_diff() {
    let root = scratch_workspace();

    let violations = scan_workspace(&root).expect("fixture scans");
    assert!(
        !violations.is_empty(),
        "the fixture must carry live violations for the round trip to mean anything"
    );

    let (total, entries) = update_baseline(&root).expect("baseline regenerates");
    assert_eq!(total, violations.len());
    assert!(entries > 0 && entries <= total);

    // Reading the file back must reproduce the in-memory counts bit for bit…
    let reloaded = load_baseline(&root).expect("baseline parses");
    assert_eq!(reloaded, baseline::count(&violations));

    // …and diffing the unchanged tree against it is exactly clean: nothing
    // new, nothing stale.
    let diff = baseline::diff(&baseline::count(&violations), &reloaded);
    assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
    assert!(diff.improvements.is_empty(), "{:?}", diff.improvements);
    assert!(!baseline::has_blocking_regression(&diff));
}

#[test]
fn regenerated_baseline_keeps_the_documented_header() {
    let root = scratch_workspace_named("update_baseline_header_ws");
    update_baseline(&root).expect("baseline regenerates");
    let text = fs::read_to_string(root.join(taglets_lint::BASELINE_FILE)).expect("baseline read");
    assert!(text.starts_with("# TAGLETS lint baseline"));
    assert!(
        text.contains("UPDATE_BASELINE=1"),
        "header must document the env-var regeneration mode"
    );
    // A second regeneration over the identical tree is byte-stable.
    update_baseline(&root).expect("baseline regenerates again");
    let again = fs::read_to_string(root.join(taglets_lint::BASELINE_FILE)).expect("baseline read");
    assert_eq!(text, again);
}

fn scratch_workspace_named(name: &str) -> PathBuf {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("hotpath_ws");
    let dst = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dst.exists() {
        fs::remove_dir_all(&dst).expect("stale scratch removed");
    }
    copy_tree(&src, &dst);
    dst
}
