//! End-to-end test of the hot-path hygiene stage (TL014–TL016) over a
//! miniature workspace (`tests/fixtures/hotpath_ws/`) shaped like the real
//! one: a serving-engine root whose allocation chain crosses crates, a
//! blocking site on the flush path, an indexing site inside a batched
//! inference root, reasoned waivers, and setup code the root-relative cut
//! must keep silent.

use std::path::PathBuf;

use taglets_lint::{scan_workspace, Rule, Violation};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("hotpath_ws")
}

fn scan() -> Vec<Violation> {
    scan_workspace(&fixture_root()).expect("fixture workspace scans")
}

#[test]
fn tl014_reports_the_cross_crate_three_hop_chain() {
    let v = scan();
    let allocs: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl014).collect();
    assert_eq!(
        allocs.len(),
        1,
        "exactly one reachable allocation: {allocs:?}"
    );
    assert_eq!(allocs[0].file, "crates/nn/src/infer.rs");
    assert!(allocs[0].excerpt.contains(".to_vec()"));
    let names: Vec<&str> = allocs[0].chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["ServingEngine::run", "build_input", "pack_rows"],
        "the engine-to-allocation path is three hops across two crates"
    );
    assert_eq!(allocs[0].chain[0].file, "crates/core/src/serve.rs");
    assert_eq!(allocs[0].chain[2].file, "crates/nn/src/infer.rs");
}

#[test]
fn tl015_fires_on_the_unwaived_blocking_recv() {
    let v = scan();
    let hits: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl015).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/serve.rs");
    assert!(hits[0].excerpt.contains(".recv()"));
    assert_eq!(hits[0].chain.len(), 1, "fires inline in the root");
}

#[test]
fn tl016_fires_inside_the_batched_inference_root() {
    let v = scan();
    let hits: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl016).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/nn/src/infer.rs");
    assert!(hits[0].excerpt.contains("probs[..] indexing"));
    assert_eq!(hits[0].chain[0].name, "predict_proba_batched");
}

#[test]
fn reasoned_waivers_and_allows_silence_their_lines() {
    // `run` carries a waived `to_vec`, a waived indexing, and an
    // `allow(TL015)` lock — none may fire, and the unwaived facts still do.
    let v = scan();
    assert!(
        !v.iter()
            .any(|v| v.file == "crates/core/src/serve.rs" && v.rule == Rule::Tl014),
        "waived allocation leaked: {v:?}"
    );
    assert!(
        !v.iter().any(|v| v.excerpt.contains(".lock()")),
        "allow(TL015) ignored: {v:?}"
    );
}

#[test]
fn setup_and_cold_code_stay_silent() {
    let v = scan();
    // `ServingEngine::new` and the `InferScratch` methods allocate freely;
    // `export_report` allocates but nothing hot reaches it.
    assert!(
        !v.iter().any(|v| v.excerpt.contains("Vec::with_capacity")),
        "constructor allocation fired: {v:?}"
    );
    assert!(
        v.iter()
            .filter(|v| v.file == "crates/nn/src/infer.rs" && v.rule == Rule::Tl014)
            .all(|v| !v.chain.is_empty()),
        "cold export_report fired without a hot chain: {v:?}"
    );
}
