//! Schema test for the `--json` contract: per-stage wall-times and
//! per-rule hit counts in the summary object, and the diagnostic line
//! shape. Downstream tooling greps these keys, so lint performance and
//! rule coverage stay visible PR-over-PR.

use std::path::PathBuf;

use taglets_lint::report::{summary_json, violation_json};
use taglets_lint::{baseline, scan_workspace_timed, ALL_RULES, STAGES};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("conc_ws")
}

#[test]
fn stage_timings_cover_the_pipeline_in_order() {
    let (_, timings) = scan_workspace_timed(&fixture_root()).expect("fixture scans");
    let stages: Vec<&str> = timings.iter().map(|t| t.stage).collect();
    assert_eq!(stages, STAGES.to_vec());
}

#[test]
fn summary_json_carries_stages_and_rule_counts() {
    let (violations, timings) = scan_workspace_timed(&fixture_root()).expect("fixture scans");
    let current = baseline::count(&violations);
    let diff = baseline::diff(&current, &baseline::Counts::new());
    let json = summary_json(&violations, &diff, &timings);

    for key in [
        "\"summary\":true",
        "\"total\":",
        "\"regressing_entries\":",
        "\"blocking_entries\":",
        "\"ok\":",
        "\"stages\":[",
        "\"rules\":{",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    for stage in STAGES {
        assert!(
            json.contains(&format!("{{\"stage\":\"{stage}\",\"millis\":")),
            "missing stage {stage} in {json}"
        );
    }
    for rule in ALL_RULES {
        assert!(
            json.contains(&format!("\"{}\":", rule.code())),
            "missing rule count {} in {json}",
            rule.code()
        );
    }
    // The fixture seeds known hits; the counts must reflect them.
    assert!(json.contains("\"TL011\":2"), "{json}");
    assert!(json.contains("\"TL013\":1"), "{json}");
}

#[test]
fn diagnostic_lines_keep_their_keys() {
    let (violations, _) = scan_workspace_timed(&fixture_root()).expect("fixture scans");
    let chained = violations
        .iter()
        .find(|v| !v.chain.is_empty())
        .expect("fixture has a chained diagnostic");
    let line = violation_json(chained);
    for key in [
        "\"rule\":",
        "\"file\":",
        "\"line\":",
        "\"description\":",
        "\"excerpt\":",
        "\"advisory\":",
        "\"chain\":[{\"fn\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}
