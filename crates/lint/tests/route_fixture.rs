//! End-to-end test of the analyzer over a miniature routed-serving
//! workspace (`tests/fixtures/route_ws/`): a `Router::run` root whose
//! dispatch path reaches a wall-clock read inside the replica engine's
//! admission (TL007) and a heap allocation in the fingerprint helper
//! (TL014), with constructors the setup cut must keep silent.
//!
//! The fixture's `ServingEngine` deliberately has no `run`, so the router
//! is the *only* taint root — the exact chains pin that the new root
//! actually drives the walk, rather than riding along an engine root.

use std::path::PathBuf;

use taglets_lint::{scan_workspace, Rule, Violation};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("route_ws")
}

fn scan() -> Vec<Violation> {
    scan_workspace(&fixture_root()).expect("fixture workspace scans")
}

#[test]
fn tl007_pins_the_router_to_engine_admission_chain() {
    let v = scan();
    let taints: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl007).collect();
    assert_eq!(
        taints.len(),
        1,
        "exactly one reachable time source: {taints:?}"
    );
    assert_eq!(taints[0].file, "crates/core/src/serve.rs");
    assert!(taints[0].excerpt.contains("Instant::now"));
    let names: Vec<&str> = taints[0].chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["Router::run", "dispatch", "ServingEngine::submit"],
        "the router-to-admission path is three hops"
    );
    assert_eq!(taints[0].chain[0].file, "crates/core/src/route.rs");
    assert_eq!(taints[0].chain[2].file, "crates/core/src/serve.rs");
}

#[test]
fn tl014_fires_from_the_router_root() {
    let v = scan();
    let allocs: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl014).collect();
    assert_eq!(
        allocs.len(),
        1,
        "exactly one reachable allocation: {allocs:?}"
    );
    assert_eq!(allocs[0].file, "crates/core/src/route.rs");
    assert!(allocs[0].excerpt.contains(".to_vec()"));
    let names: Vec<&str> = allocs[0].chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["Router::run", "dispatch", "fingerprint"],
        "the allocation is reached from the router root, not an engine root"
    );
}

#[test]
fn constructors_stay_silent_under_the_setup_cut() {
    // `Router::new` allocates its replica vector; nothing may fire there.
    // Beyond the two pinned chains, the only other report is the
    // site-level TL003 at the `Instant::now` line itself (it fires at the
    // source, reachable or not).
    let v = scan();
    assert!(
        !v.iter().any(|v| v.excerpt.contains("Vec::with_capacity")),
        "constructor allocation fired: {v:?}"
    );
    let extra: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule != Rule::Tl007 && v.rule != Rule::Tl014)
        .collect();
    assert!(
        extra.iter().all(|v| v.rule == Rule::Tl003
            && v.file == "crates/core/src/serve.rs"
            && v.excerpt.contains("Instant::now")),
        "unexpected extra reports: {extra:?}"
    );
    assert_eq!(v.len(), 3, "two pinned chains + the TL003 site hit: {v:?}");
}
