//! Runs the lint engine over the actual workspace so `cargo test` enforces
//! the baseline: any new non-advisory violation fails this test with the
//! offending sites listed.

use std::path::Path;

use taglets_lint::{baseline, scan_workspace, Rule};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_has_no_new_violations() {
    let root = workspace_root();
    let violations = scan_workspace(root).expect("workspace scan succeeds");
    let current = baseline::count(&violations);
    let base = taglets_lint::load_baseline(root).expect("baseline parses");
    let diff = baseline::diff(&current, &base);

    let mut message = String::new();
    for (rule, file, current, allowed) in &diff.regressions {
        let advisory = Rule::from_code(rule)
            .map(Rule::is_advisory)
            .unwrap_or(false);
        if advisory {
            continue;
        }
        message.push_str(&format!(
            "\n{rule} {file}: {current} violations, baseline allows {allowed}:"
        ));
        for v in violations
            .iter()
            .filter(|v| v.rule.code() == rule && &v.file == file)
        {
            message.push_str(&format!("\n    {}:{} | {}", v.file, v.line, v.excerpt));
        }
    }
    assert!(
        !baseline::has_blocking_regression(&diff),
        "new lint violations (fix them or run `cargo run -p taglets-lint -- --update-baseline`):{message}"
    );
}

#[test]
fn workspace_scan_finds_library_sources() {
    // Guards against the scanner silently scanning nothing (e.g. a layout
    // change): the workspace has well over a thousand lines of library code
    // and a known baselined rule surface.
    let root = workspace_root();
    let violations = scan_workspace(root).expect("workspace scan succeeds");
    // The tree keeps at least some baselined violations (see
    // lint-baseline.txt); an empty scan would mean the walker broke.
    assert!(
        !violations.is_empty(),
        "expected the scan to visit library sources and report baselined sites"
    );
}
