//! Runs the lint engine over the actual workspace so `cargo test` enforces
//! the baseline: any new non-advisory violation fails this test with the
//! offending sites listed.

use std::path::Path;

use taglets_lint::{baseline, scan_workspace, Rule};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_has_no_new_violations() {
    let root = workspace_root();
    let violations = scan_workspace(root).expect("workspace scan succeeds");
    let current = baseline::count(&violations);
    let base = taglets_lint::load_baseline(root).expect("baseline parses");
    let diff = baseline::diff(&current, &base);

    let mut message = String::new();
    for (rule, file, current, allowed) in &diff.regressions {
        let advisory = Rule::from_code(rule)
            .map(Rule::is_advisory)
            .unwrap_or(false);
        if advisory {
            continue;
        }
        message.push_str(&format!(
            "\n{rule} {file}: {current} violations, baseline allows {allowed}:"
        ));
        for v in violations
            .iter()
            .filter(|v| v.rule.code() == rule && &v.file == file)
        {
            message.push_str(&format!("\n    {}:{} | {}", v.file, v.line, v.excerpt));
        }
    }
    assert!(
        !baseline::has_blocking_regression(&diff),
        "new lint violations (fix them or run `cargo run -p taglets-lint -- --update-baseline`):{message}"
    );
}

#[test]
fn workspace_scan_finds_library_sources() {
    // Guards against the scanner silently scanning nothing (e.g. a layout
    // change). The baseline is empty now, so zero violations is the healthy
    // state — coverage is asserted on the file walk itself instead.
    let root = workspace_root();
    let files = taglets_lint::workspace_files(root).expect("workspace walk succeeds");
    assert!(
        files.len() >= 20,
        "expected the scan to visit the workspace's library sources, saw {} files",
        files.len()
    );
    for expected in [
        "crates/tensor/src/exec.rs",
        "crates/core/src/serve.rs",
        "crates/lint/src/concurrency.rs",
    ] {
        assert!(
            files.iter().any(|f| f == expected),
            "scan misses {expected}"
        );
    }
}
