//! Golden-file tests for the token lexer: each `tests/golden/*.rs` fixture
//! is lexed and its [`taglets_lint::lexer::dump`] rendering compared against
//! the checked-in `*.tokens` sibling.
//!
//! Regenerate the expectations after an intentional lexer change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p taglets-lint --test lexer_golden
//! ```

use std::fs;
use std::path::PathBuf;

use taglets_lint::lexer;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn fixtures_lex_to_their_golden_token_streams() {
    let dir = golden_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("golden fixture directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 4,
        "expected the golden fixture set, found {} files in {}",
        fixtures.len(),
        dir.display()
    );

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for fixture in fixtures {
        let source = fs::read_to_string(&fixture).expect("fixture is readable");
        let actual = lexer::dump(&lexer::lex(&source));
        let golden_path = fixture.with_extension("tokens");
        if update {
            fs::write(&golden_path, &actual).expect("golden file is writable");
            continue;
        }
        let expected = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {} — run with UPDATE_GOLDEN=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "token stream for {} diverged from its golden file",
            fixture.display()
        );
    }
}

#[test]
fn golden_fixtures_drop_literal_contents() {
    // The lexer's core privacy property for downstream rules: nothing inside
    // a string/char literal survives into the token stream.
    for name in ["raw_strings.rs", "byte_strings.rs"] {
        let source = fs::read_to_string(golden_dir().join(name)).expect("fixture is readable");
        let dumped = lexer::dump(&lexer::lex(&source));
        for leaked in ["quotes", "escape", "terminator", "raw bytes"] {
            assert!(
                !dumped.contains(leaked),
                "literal contents `{leaked}` leaked into the {name} token dump"
            );
        }
    }
}
