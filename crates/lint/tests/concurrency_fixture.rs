//! End-to-end test of the concurrency-safety stage (TL010–TL013) over a
//! miniature workspace (`tests/fixtures/conc_ws/`) shaped like the real
//! one: an executor core with reasoned waivers, a deliberately seeded
//! three-hop TL011 race, and TL010/TL012/TL013 sites.

use std::path::PathBuf;

use taglets_lint::{scan_workspace, Rule, Violation};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("conc_ws")
}

fn scan() -> Vec<Violation> {
    scan_workspace(&fixture_root()).expect("fixture workspace scans")
}

#[test]
fn tl011_reports_the_three_hop_chain() {
    let v = scan();
    let raced: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::Tl011 && !v.chain.is_empty())
        .collect();
    assert_eq!(raced.len(), 1, "exactly one reachable race: {raced:?}");
    assert_eq!(raced[0].file, "crates/core/src/pool.rs");
    let names: Vec<&str> = raced[0].chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["run_pool", "evaluate", "lookup"],
        "the dispatch-to-Mutex path is three hops"
    );
}

#[test]
fn tl011_flags_file_scope_fields_without_a_chain() {
    let v = scan();
    let fields: Vec<&Violation> = v
        .iter()
        .filter(|v| v.rule == Rule::Tl011 && v.chain.is_empty())
        .collect();
    assert_eq!(fields.len(), 1, "{fields:?}");
    assert_eq!(fields[0].file, "crates/core/src/pool.rs");
    assert!(fields[0].excerpt.contains("Cell"));
}

#[test]
fn tl013_flags_the_worker_closure_reduction() {
    let v = scan();
    let hits: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl013).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/stats.rs");
    assert!(hits[0].excerpt.contains("total += chunk"));
}

#[test]
fn tl010_respects_the_unsafe_waiver() {
    let v = scan();
    let hits: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl010).collect();
    assert_eq!(hits.len(), 1, "only the unwaived block fires: {hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/stats.rs");
}

#[test]
fn tl012_fires_outside_the_waived_executor_core() {
    let v = scan();
    let hits: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::Tl012).collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].file, "crates/core/src/stats.rs");
    assert!(hits[0].excerpt.contains("Ordering::Relaxed"));
}

#[test]
fn the_waived_executor_core_is_silent() {
    let v = scan();
    assert!(
        !v.iter().any(|v| v.file == "crates/tensor/src/exec.rs"
            && matches!(
                v.rule,
                Rule::Tl010 | Rule::Tl011 | Rule::Tl012 | Rule::Tl013
            )),
        "reasoned waivers must silence the executor core"
    );
}
