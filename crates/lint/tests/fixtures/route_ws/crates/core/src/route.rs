//! Fixture: a multi-replica router whose dispatch path reaches both a
//! wall-clock read (in the replica engine's admission) and a heap
//! allocation (in the fingerprint helper). The chains the analyzer must
//! reconstruct from the `Router::run` root are
//! `run → dispatch → ServingEngine::submit` (TL007) and
//! `run → dispatch → fingerprint` (TL014).

use crate::serve::ServingEngine;

pub struct Router {
    engines: Vec<ServingEngine>,
}

impl Router {
    /// Setup: allocations here are the point and must stay silent.
    pub fn new(replicas: usize) -> Self {
        let mut engines = Vec::with_capacity(replicas);
        engines.resize_with(replicas, ServingEngine::idle);
        Router { engines }
    }

    /// The routing root: replays a request stream across the fleet.
    pub fn run(&mut self, stream: &[Req]) {
        for req in stream {
            dispatch(&mut self.engines, req);
        }
    }
}

/// Hop two of both pinned chains: picks a replica and forwards. Free of
/// facts itself, so nothing may be reported at this hop.
fn dispatch(engines: &mut [ServingEngine], req: &Req) {
    let slot = fingerprint(req);
    if let Some(engine) = engines.iter_mut().nth(slot) {
        engine.submit(req);
    }
}

/// Terminal hop of the TL014 chain: owns a copy of the request bytes.
fn fingerprint(req: &Req) -> usize {
    let owned = req.bytes().to_vec();
    owned.len()
}
