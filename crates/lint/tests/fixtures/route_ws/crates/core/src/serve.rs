//! Fixture: the replica engine behind the router. Its admission path reads
//! the wall clock — the TL007 fact the `Router::run` root must reach
//! through `dispatch`. `ServingEngine::run` is deliberately absent so the
//! router is the *only* taint root that reaches `submit`.

pub struct ServingEngine {
    depth: usize,
}

impl ServingEngine {
    /// Setup-cut target: constructors never fire even from a hot root.
    pub fn idle() -> Self {
        ServingEngine { depth: 0 }
    }

    /// Terminal hop of the TL007 chain: stamps admission with real time.
    pub fn submit(&mut self, _req: &Req) {
        let _admitted_at = Instant::now();
        self.depth += 1;
    }
}
