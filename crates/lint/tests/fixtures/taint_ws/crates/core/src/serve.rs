//! Fixture: a serving engine whose deadline flush consults the wall clock.
//! The chain run → flush_deadline → batch_clock is what the taint pass
//! must reconstruct from the `ServingEngine::run` root.

pub struct ServingEngine<'a> {
    _model: &'a (),
}

impl<'a> ServingEngine<'a> {
    pub fn run() {
        flush_deadline();
    }
}

fn flush_deadline() {
    let _deadline = batch_clock();
}

fn batch_clock() -> u128 {
    Instant::now().elapsed().as_nanos()
}
