//! Fixture: a seeded pipeline whose telemetry helper leaks wall-clock time.
//! The chain run → train_modules → measure_stage → stage_clock is what the
//! taint pass must reconstruct.

pub struct TagletsSystem;

impl TagletsSystem {
    pub fn run(&self) {
        self.train_modules();
    }

    fn train_modules(&self) {
        measure_stage();
    }
}

fn measure_stage() {
    let _nanos = stage_clock();
}

fn stage_clock() -> u128 {
    Instant::now().elapsed().as_nanos()
}
