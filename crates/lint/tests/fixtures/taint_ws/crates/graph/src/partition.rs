//! Fixture: a sharded-retrofit boundary exchange whose halo refresh
//! consults the wall clock. The chain exchange_boundaries →
//! refresh_halo_rows → halo_clock is what the taint pass must reconstruct
//! from the `exchange_boundaries` root.

pub fn exchange_boundaries() {
    refresh_halo_rows();
}

fn refresh_halo_rows() {
    let _stamp = halo_clock();
}

fn halo_clock() -> u128 {
    Instant::now().elapsed().as_nanos()
}
