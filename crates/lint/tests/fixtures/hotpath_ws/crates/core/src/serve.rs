//! Miniature serving engine for the hot-path hygiene fixture: a
//! latency-critical root whose call chain crosses into `crates/nn`, one
//! blocking site on the flush path, waived sites that must stay silent,
//! and setup code the root-relative cut must never walk into.

use crate::infer::pack_rows;

pub struct ServingEngine {
    queue: Receiver,
    scratch: InferScratch,
}

impl ServingEngine {
    /// Setup: allocations here are the point and must stay silent.
    pub fn new(capacity: usize) -> Self {
        let backing = Vec::with_capacity(capacity);
        ServingEngine {
            queue: Receiver::over(backing),
            scratch: InferScratch::empty(),
        }
    }

    /// The latency-critical root: drains the queue and dispatches batches.
    pub fn run(&mut self) {
        let req = self.queue.recv();
        let flat = build_input(&req);
        let first = flat[0]; // lint: panicfree(admission rejects empty inputs)
        let audit = flat.to_vec(); // lint: alloc(the audit log owns its copy)
        let _g = self.queue.lock(); // lint: allow(TL015)
        self.scratch.grow(flat.len().max(first as usize + audit.len()));
    }
}

/// Hop two of the pinned chain: still allocation-free itself.
fn build_input(req: &Request) -> Vec<f32> {
    pack_rows(req.rows())
}

pub struct InferScratch {
    buf: Vec<f32>,
}

impl InferScratch {
    /// Setup-cut target: `*Scratch` methods never fire even when a hot
    /// root calls them.
    pub fn empty() -> Self {
        InferScratch { buf: Vec::new() }
    }

    /// One-time resize; the `to_vec` below must never fire.
    pub fn grow(&mut self, n: usize) {
        self.buf.resize(n, 0.0);
        let shadow = self.buf.to_vec();
        self.buf.truncate(shadow.len());
    }
}
