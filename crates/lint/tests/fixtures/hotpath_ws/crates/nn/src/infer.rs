//! Inference half of the hot-path hygiene fixture: the tail of the pinned
//! TL014 chain plus an indexing TL016 inside a batched-inference root.

/// Hop three of the pinned chain: the unwaived allocation the walk from
/// `ServingEngine::run` must reach two files away.
pub fn pack_rows(rows: &[f32]) -> Vec<f32> {
    rows.to_vec()
}

/// A latency-critical root in its own right: fires TL016 directly.
pub fn predict_proba_batched(probs: &[f32], idx: usize) -> f32 {
    probs[idx]
}

/// Cold code: facts here must stay silent — nothing reaches it.
pub fn export_report(rows: &[f32]) -> Vec<f32> {
    let copy = rows.to_vec();
    copy
}
