//! Mini executor core mirroring the real `tensor::exec`: the claim counter
//! and its relaxed ordering carry reasoned waivers, so the concurrency
//! stage must stay silent here.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic work distributor (fixture stand-in).
pub struct Executor;

impl Executor {
    /// Claims jobs atomically; results are reassembled in index order.
    pub fn map(&self, jobs: usize) -> usize {
        // lint: concurrency(claim counter only orders job claiming; results carry their index and are reassembled in order)
        let next = AtomicUsize::new(0);
        // lint: concurrency(atomic RMW yields unique indices; the scope join is the happens-before edge)
        let i = next.fetch_add(1, Ordering::Relaxed);
        jobs + i
    }
}
