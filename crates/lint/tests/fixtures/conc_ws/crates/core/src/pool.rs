//! Deliberately seeded TL011 race: a three-hop path from an executor
//! dispatch down to a `Mutex`, plus a file-scope interior-mutability field
//! that must be flagged without a chain.

use std::cell::Cell;
use std::sync::Mutex;

/// Scratch holding interior mutability at file scope (TL011 site, no chain).
pub struct Scratch {
    slot: Cell<u64>,
}

/// Dispatches jobs to worker closures (TL011 chain hop 0).
pub fn run_pool(executor: &Executor, jobs: usize) -> Vec<u64> {
    executor.map(jobs, |i| evaluate(i))
}

fn evaluate(job: usize) -> u64 {
    lookup(job)
}

fn lookup(job: usize) -> u64 {
    let cache = Mutex::new(job as u64);
    match cache.lock() {
        Ok(v) => *v,
        Err(_) => 0,
    }
}
