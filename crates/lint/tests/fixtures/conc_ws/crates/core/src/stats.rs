//! Seeded TL010/TL012/TL013 sites: a float reduction across worker
//! closures, a relaxed atomic outside the executor core, and an
//! unwaived/waived `unsafe` pair.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sums chunks through worker closures — the non-associative reduction
/// TL013 exists to catch.
pub fn reduce(executor: &Executor, chunks: &[f32]) -> f32 {
    let mut total = 0.0_f32;
    executor.for_each(chunks.len(), |i, chunk| {
        total += chunk;
    });
    total
}

/// Bumps a counter with a relaxed ordering (TL012 site).
pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Reads a raw pointer without a waiver (TL010 site).
pub fn peek(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}

/// Reads a raw pointer with a reasoned waiver (silent).
pub fn peek_waived(ptr: *const u64) -> u64 {
    // lint: unsafe(fixture: the caller guarantees the pointer is valid and exclusively owned)
    unsafe { *ptr }
}
