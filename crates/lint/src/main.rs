//! CLI for the workspace lint: `cargo run -p taglets-lint -- [FLAGS]`.
//!
//! * `--check` (default): scan and diff against `lint-baseline.txt`; exit 1
//!   on new non-advisory violations.
//! * `--update-baseline`: regenerate `lint-baseline.txt` from the current
//!   tree (how burn-down progress is locked in). Setting `UPDATE_BASELINE=1`
//!   in the environment does the same — the `UPDATE_GOLDEN=1` idiom — so the
//!   baseline is never hand-edited.
//! * `--list`: print every current violation (including baselined ones).
//! * `--json`: machine-readable output — one JSON diagnostic per line,
//!   including TL007/TL011/TL014–TL016 call chains, plus a summary object
//!   with per-stage wall-times and per-rule hit counts (combines with
//!   `--check` or `--list`).
//! * `--bench`: run the whole pipeline repeatedly and write
//!   `BENCH_lint.json` at the workspace root — per-stage minimum wall-times
//!   (min-of-9, the `BENCH_kernels.json` discipline) plus per-rule hit
//!   counts, so analyzer cost and violation counts form a PR-over-PR
//!   trajectory.
//! * `--explain TLxxx`: print one rule's rationale and waiver syntax.
//! * `--root <dir>`: override workspace-root autodetection.
//!
//! Exit codes: `0` clean, `1` new violations above the baseline, `2`
//! internal lint error (bad arguments, unreadable workspace, malformed
//! baseline).

use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use taglets_lint::report::{bench_json, summary_json, violation_json};
use taglets_lint::{baseline, find_workspace_root, load_baseline, scan_workspace_timed};
use taglets_lint::{Rule, Violation, ALL_RULES, BASELINE_FILE};

/// Pipeline repetitions for `--bench`, matching BENCH_kernels.json.
const BENCH_RUNS: usize = 9;

enum Mode {
    Check,
    UpdateBaseline,
    List,
    Bench,
    Explain(String),
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("taglets-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut mode = Mode::Check;
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--list" => mode = Mode::List,
            "--json" => json = true,
            "--bench" => mode = Mode::Bench,
            "--explain" => {
                let code = args
                    .next()
                    .ok_or("--explain requires a rule code (TL001–TL016)")?;
                mode = Mode::Explain(code);
            }
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                root_override = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                print_help();
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    // The UPDATE_GOLDEN=1 idiom for the baseline: the env var turns a
    // plain `--check` invocation into a regeneration run.
    if env::var_os("UPDATE_BASELINE").is_some() && matches!(mode, Mode::Check) {
        mode = Mode::UpdateBaseline;
    }

    // `--explain` needs no workspace at all.
    if let Mode::Explain(code) = &mode {
        let rule = Rule::from_code(&code.to_uppercase())
            .ok_or_else(|| format!("unknown rule `{code}` (valid: TL001–TL016)"))?;
        print_explain(rule);
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("cannot locate workspace root (run from the repo or pass --root)")?
        }
    };

    let (violations, timings) =
        scan_workspace_timed(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let current = baseline::count(&violations);

    match mode {
        Mode::Explain(_) => unreachable!("handled before scanning"), // lint: allow(TL002)
        Mode::List => {
            for v in &violations {
                if json {
                    println!("{}", violation_json(v));
                } else {
                    println!(
                        "{} {}:{} {} | {}",
                        v.rule.code(),
                        v.file,
                        v.line,
                        v.rule.description(),
                        v.excerpt
                    );
                    print_chain(v);
                }
            }
            if !json {
                print_totals(&violations);
            }
            Ok(ExitCode::SUCCESS)
        }
        Mode::Bench => {
            // First run already happened above; 8 more complete the
            // min-of-9. Per-stage minimums absorb scheduler noise the same
            // way BENCH_kernels.json's interleaved pairs do.
            let mut mins: Vec<(&'static str, u128)> =
                timings.iter().map(|t| (t.stage, t.nanos)).collect();
            for _ in 1..BENCH_RUNS {
                let (_, t) = scan_workspace_timed(&root)
                    .map_err(|e| format!("scanning {}: {e}", root.display()))?;
                for (slot, timing) in mins.iter_mut().zip(&t) {
                    slot.1 = slot.1.min(timing.nanos);
                }
            }
            let files = taglets_lint::workspace_files(&root)
                .map_err(|e| format!("listing {}: {e}", root.display()))?
                .len();
            let path = root.join("BENCH_lint.json");
            let body = bench_json(BENCH_RUNS, files, &mins, &violations);
            fs::write(&path, format!("{body}\n"))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("{body}");
            println!("wrote {}", path.display());
            Ok(ExitCode::SUCCESS)
        }
        Mode::UpdateBaseline => {
            let path = root.join(BASELINE_FILE);
            fs::write(&path, baseline::render(&current))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!(
                "wrote {} ({} violations across {} rule/file entries)",
                path.display(),
                violations.len(),
                current.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        Mode::Check => {
            let base = load_baseline(&root)?;
            let diff = baseline::diff(&current, &base);
            if json {
                report_check_json(&violations, &diff, &timings);
            } else {
                report_check(&violations, &diff);
            }
            if baseline::has_blocking_regression(&diff) {
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
    }
}

/// JSON check output: one diagnostic per line for every violation in a
/// regressing (rule, file) bucket, then a one-line summary object carrying
/// stage timings and per-rule totals.
fn report_check_json(
    violations: &[Violation],
    diff: &baseline::Diff,
    timings: &[taglets_lint::StageTiming],
) {
    for (rule, file, _, _) in &diff.regressions {
        for v in violations
            .iter()
            .filter(|v| v.rule.code() == rule && &v.file == file)
        {
            println!("{}", violation_json(v));
        }
    }
    println!("{}", summary_json(violations, diff, timings));
}

/// Prints a TL007/TL011 chain under its diagnostic in the human-readable
/// modes.
fn print_chain(v: &Violation) {
    for (i, hop) in v.chain.iter().enumerate() {
        println!(
            "    {}└─ {} ({}:{})",
            "   ".repeat(i),
            hop.name,
            hop.file,
            hop.line
        );
    }
}

/// Prints new violations (with their sites) and ratchet opportunities.
fn report_check(violations: &[Violation], diff: &baseline::Diff) {
    let mut by_key: BTreeMap<(&str, &str), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        by_key
            .entry((v.rule.code(), v.file.as_str()))
            .or_default()
            .push(v);
    }
    let mut blocking = 0usize;
    for (rule, file, current, base) in &diff.regressions {
        let advisory = Rule::from_code(rule)
            .map(Rule::is_advisory)
            .unwrap_or(false);
        let label = if advisory { "advisory" } else { "NEW" };
        println!("{label}: {rule} {file}: {current} violation(s), baseline allows {base}");
        if let Some(sites) = by_key.get(&(rule.as_str(), file.as_str())) {
            for v in sites {
                println!("    {}:{} | {}", v.file, v.line, v.excerpt);
                print_chain(v);
            }
        }
        if !advisory {
            blocking += 1;
        }
    }
    for (rule, file, current, base) in &diff.improvements {
        println!("stale baseline: {rule} {file}: {current} < {base} — run --update-baseline to ratchet down");
    }
    if blocking > 0 {
        println!(
            "lint check FAILED: {blocking} rule/file entr{} above baseline",
            if blocking == 1 { "y" } else { "ies" }
        );
    } else {
        println!(
            "lint check passed ({} baselined violations tolerated)",
            violations.len()
        );
    }
}

/// Prints one rule's one-line description, rationale paragraph, and waiver
/// syntax — the same table DESIGN.md §6 renders.
fn print_explain(rule: Rule) {
    println!("{} — {}", rule.code(), rule.description());
    if rule.is_advisory() {
        println!("(advisory: reported, never fails --check)");
    }
    println!();
    println!("{}", rule.rationale());
    println!();
    println!("waiver: {}", rule.waiver());
}

fn print_totals(violations: &[Violation]) {
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for v in violations {
        *per_rule.entry(v.rule.code()).or_insert(0) += 1;
    }
    let summary: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            format!(
                "{} {}",
                r.code(),
                per_rule.get(r.code()).copied().unwrap_or(0)
            )
        })
        .collect();
    println!(
        "totals: {} ({} violations)",
        summary.join(", "),
        violations.len()
    );
}

fn print_help() {
    println!(
        "taglets-lint: std-only static analysis for the TAGLETS workspace\n\
         \n\
         USAGE: cargo run -p taglets-lint -- [--check | --update-baseline | --list | --bench | --explain TLxxx] [--root DIR]\n\
         \n\
         --check            diff violations against {BASELINE_FILE}; exit 1 on new ones (default)\n\
         --update-baseline  regenerate {BASELINE_FILE} from the current tree (or set UPDATE_BASELINE=1)\n\
         --list             print every violation, including baselined ones\n\
         --json             one JSON diagnostic per line plus a summary with stage timings\n\
         --bench            write BENCH_lint.json (min-of-{BENCH_RUNS} per-stage wall-times + per-rule counts)\n\
         --explain TLxxx    print one rule's rationale and waiver syntax\n\
         --root DIR         workspace root (default: walk up from the current directory)\n\
         \n\
         EXIT CODES: 0 clean · 1 new violations above baseline · 2 internal lint error"
    );
}
