//! CLI for the workspace lint: `cargo run -p taglets-lint -- [FLAGS]`.
//!
//! * `--check` (default): scan and diff against `lint-baseline.txt`; exit 1
//!   on new non-advisory violations.
//! * `--update-baseline`: regenerate `lint-baseline.txt` from the current
//!   tree (how burn-down progress is locked in).
//! * `--list`: print every current violation (including baselined ones).
//! * `--json`: machine-readable output — one JSON diagnostic per line,
//!   including TL007/TL011 call chains, plus a summary object with
//!   per-stage wall-times and per-rule hit counts (combines with `--check`
//!   or `--list`).
//! * `--explain TLxxx`: print one rule's rationale and waiver syntax.
//! * `--root <dir>`: override workspace-root autodetection.
//!
//! Exit codes: `0` clean, `1` new violations above the baseline, `2`
//! internal lint error (bad arguments, unreadable workspace, malformed
//! baseline).

use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use taglets_lint::report::{summary_json, violation_json};
use taglets_lint::{baseline, find_workspace_root, load_baseline, scan_workspace_timed};
use taglets_lint::{Rule, Violation, ALL_RULES, BASELINE_FILE};

enum Mode {
    Check,
    UpdateBaseline,
    List,
    Explain(String),
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("taglets-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut mode = Mode::Check;
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--list" => mode = Mode::List,
            "--json" => json = true,
            "--explain" => {
                let code = args
                    .next()
                    .ok_or("--explain requires a rule code (TL001–TL013)")?;
                mode = Mode::Explain(code);
            }
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                root_override = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                print_help();
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    // `--explain` needs no workspace at all.
    if let Mode::Explain(code) = &mode {
        let rule = Rule::from_code(&code.to_uppercase())
            .ok_or_else(|| format!("unknown rule `{code}` (valid: TL001–TL013)"))?;
        print_explain(rule);
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("cannot locate workspace root (run from the repo or pass --root)")?
        }
    };

    let (violations, timings) =
        scan_workspace_timed(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let current = baseline::count(&violations);

    match mode {
        Mode::Explain(_) => unreachable!("handled before scanning"), // lint: allow(TL002)
        Mode::List => {
            for v in &violations {
                if json {
                    println!("{}", violation_json(v));
                } else {
                    println!(
                        "{} {}:{} {} | {}",
                        v.rule.code(),
                        v.file,
                        v.line,
                        v.rule.description(),
                        v.excerpt
                    );
                    print_chain(v);
                }
            }
            if !json {
                print_totals(&violations);
            }
            Ok(ExitCode::SUCCESS)
        }
        Mode::UpdateBaseline => {
            let path = root.join(BASELINE_FILE);
            fs::write(&path, baseline::render(&current))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!(
                "wrote {} ({} violations across {} rule/file entries)",
                path.display(),
                violations.len(),
                current.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        Mode::Check => {
            let base = load_baseline(&root)?;
            let diff = baseline::diff(&current, &base);
            if json {
                report_check_json(&violations, &diff, &timings);
            } else {
                report_check(&violations, &diff);
            }
            if baseline::has_blocking_regression(&diff) {
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
    }
}

/// JSON check output: one diagnostic per line for every violation in a
/// regressing (rule, file) bucket, then a one-line summary object carrying
/// stage timings and per-rule totals.
fn report_check_json(
    violations: &[Violation],
    diff: &baseline::Diff,
    timings: &[taglets_lint::StageTiming],
) {
    for (rule, file, _, _) in &diff.regressions {
        for v in violations
            .iter()
            .filter(|v| v.rule.code() == rule && &v.file == file)
        {
            println!("{}", violation_json(v));
        }
    }
    println!("{}", summary_json(violations, diff, timings));
}

/// Prints a TL007/TL011 chain under its diagnostic in the human-readable
/// modes.
fn print_chain(v: &Violation) {
    for (i, hop) in v.chain.iter().enumerate() {
        println!(
            "    {}└─ {} ({}:{})",
            "   ".repeat(i),
            hop.name,
            hop.file,
            hop.line
        );
    }
}

/// Prints new violations (with their sites) and ratchet opportunities.
fn report_check(violations: &[Violation], diff: &baseline::Diff) {
    let mut by_key: BTreeMap<(&str, &str), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        by_key
            .entry((v.rule.code(), v.file.as_str()))
            .or_default()
            .push(v);
    }
    let mut blocking = 0usize;
    for (rule, file, current, base) in &diff.regressions {
        let advisory = Rule::from_code(rule)
            .map(Rule::is_advisory)
            .unwrap_or(false);
        let label = if advisory { "advisory" } else { "NEW" };
        println!("{label}: {rule} {file}: {current} violation(s), baseline allows {base}");
        if let Some(sites) = by_key.get(&(rule.as_str(), file.as_str())) {
            for v in sites {
                println!("    {}:{} | {}", v.file, v.line, v.excerpt);
                print_chain(v);
            }
        }
        if !advisory {
            blocking += 1;
        }
    }
    for (rule, file, current, base) in &diff.improvements {
        println!("stale baseline: {rule} {file}: {current} < {base} — run --update-baseline to ratchet down");
    }
    if blocking > 0 {
        println!(
            "lint check FAILED: {blocking} rule/file entr{} above baseline",
            if blocking == 1 { "y" } else { "ies" }
        );
    } else {
        println!(
            "lint check passed ({} baselined violations tolerated)",
            violations.len()
        );
    }
}

/// Prints one rule's one-line description, rationale paragraph, and waiver
/// syntax — the same table DESIGN.md §6 renders.
fn print_explain(rule: Rule) {
    println!("{} — {}", rule.code(), rule.description());
    if rule.is_advisory() {
        println!("(advisory: reported, never fails --check)");
    }
    println!();
    println!("{}", rule.rationale());
    println!();
    println!("waiver: {}", rule.waiver());
}

fn print_totals(violations: &[Violation]) {
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for v in violations {
        *per_rule.entry(v.rule.code()).or_insert(0) += 1;
    }
    let summary: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            format!(
                "{} {}",
                r.code(),
                per_rule.get(r.code()).copied().unwrap_or(0)
            )
        })
        .collect();
    println!(
        "totals: {} ({} violations)",
        summary.join(", "),
        violations.len()
    );
}

fn print_help() {
    println!(
        "taglets-lint: std-only static analysis for the TAGLETS workspace\n\
         \n\
         USAGE: cargo run -p taglets-lint -- [--check | --update-baseline | --list | --explain TLxxx] [--root DIR]\n\
         \n\
         --check            diff violations against {BASELINE_FILE}; exit 1 on new ones (default)\n\
         --update-baseline  regenerate {BASELINE_FILE} from the current tree\n\
         --list             print every violation, including baselined ones\n\
         --json             one JSON diagnostic per line plus a summary with stage timings\n\
         --explain TLxxx    print one rule's rationale and waiver syntax\n\
         --root DIR         workspace root (default: walk up from the current directory)\n\
         \n\
         EXIT CODES: 0 clean · 1 new violations above baseline · 2 internal lint error"
    );
}
