//! Workspace call-graph construction over the extracted functions.
//!
//! Resolution is name-based and deliberately over-approximate — the lint has
//! no type inference, so a method call `x.train(...)` gets edges to *every*
//! workspace `train`. Over-approximation is the safe direction for a taint
//! analysis: it can report a chain that cannot happen at runtime (silenced
//! with a reasoned waiver), but it cannot miss one that can.
//!
//! Resolution order per call site:
//! 1. `Type::name(...)`, `Self::name(...)` and `self.name(...)` → functions
//!    in `impl Type` blocks with that name (the `self`/`Self` markers
//!    resolve to the caller's own impl type).
//! 2. A qualified call that matches no impl (module paths like
//!    `exec::run(...)`) → free functions with that simple name.
//! 3. Unqualified calls and method calls → every function with that simple
//!    name, impl'd or free.

use std::collections::BTreeMap;

use crate::items::FnInfo;

/// The workspace call-graph: extracted functions plus resolved edges.
#[derive(Debug)]
pub struct CallGraph {
    /// All functions, in extraction order (files sorted by the walker).
    pub fns: Vec<FnInfo>,
    /// `edges[caller]` = sorted, deduped `(callee, call-site line)` pairs.
    pub edges: Vec<Vec<(usize, usize)>>,
}

/// Builds the graph from per-file extraction results.
pub fn build(fns: Vec<FnInfo>) -> CallGraph {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
        match &f.impl_type {
            Some(t) => by_type_name
                .entry((t.as_str(), f.name.as_str()))
                .or_default()
                .push(i),
            None => free_by_name.entry(&f.name).or_default().push(i),
        }
    }

    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
    for (caller, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let qualifier = match call.qualifier.as_deref() {
                Some("self") | Some("Self") => f.impl_type.as_deref(),
                other => other,
            };
            let targets: &[usize] = match qualifier {
                Some(q) => by_type_name
                    .get(&(q, call.name.as_str()))
                    .map(Vec::as_slice)
                    .or_else(|| free_by_name.get(call.name.as_str()).map(Vec::as_slice))
                    .unwrap_or(&[]),
                None => by_name
                    .get(call.name.as_str())
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            };
            for &t in targets {
                if t != caller {
                    edges[caller].push((t, call.line));
                }
            }
        }
    }
    for list in &mut edges {
        list.sort_unstable();
        list.dedup_by_key(|(t, _)| *t);
    }
    CallGraph { fns, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn graph(src: &str) -> CallGraph {
        let lines = scan(src);
        build(crate::items::extract("crates/x/src/lib.rs", &lex(src), &lines).fns)
    }

    fn names(g: &CallGraph, from: &str) -> Vec<String> {
        let i = g
            .fns
            .iter()
            .position(|f| f.qualified() == from)
            .unwrap_or(usize::MAX);
        g.edges[i]
            .iter()
            .map(|&(t, _)| g.fns[t].qualified())
            .collect()
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let g = graph(
            "impl Sys {\n    fn run(&self) { self.step(); }\n    fn step(&self) {}\n}\nimpl Other {\n    fn step(&self) {}\n}\n",
        );
        assert_eq!(names(&g, "Sys::run"), vec!["Sys::step"]);
    }

    #[test]
    fn capital_self_calls_resolve_to_the_impl_type() {
        let g = graph(
            "impl Sys {\n    fn run(&self) { Self::stage(); }\n    fn stage() {}\n}\nimpl Other {\n    fn stage(&self) {}\n}\n",
        );
        assert_eq!(names(&g, "Sys::run"), vec!["Sys::stage"]);
    }

    #[test]
    fn unqualified_method_calls_fan_out() {
        let g = graph(
            "fn drive(m: &dyn M) { m.train(); }\nimpl A {\n    fn train(&self) {}\n}\nimpl B {\n    fn train(&self) {}\n}\n",
        );
        assert_eq!(names(&g, "drive"), vec!["A::train", "B::train"]);
    }

    #[test]
    fn module_qualified_calls_fall_back_to_free_fns() {
        let g = graph("fn a() { helpers::tick(); }\nfn tick() {}\n");
        assert_eq!(names(&g, "a"), vec!["tick"]);
    }

    #[test]
    fn unknown_targets_get_no_edges() {
        let g = graph("fn a() { Vec::with_capacity(4); mystery(); }\n");
        assert!(names(&g, "a").is_empty());
    }
}
