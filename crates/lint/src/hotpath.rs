//! Hot-path hygiene analysis over the workspace call-graph.
//!
//! The paper's serving claim (§1: the end model serves "at the speed of a
//! single trained model") made PRs 4–7 build a scratch-reuse discipline by
//! hand — `InferScratch`, `GradScratch`, `PackedWeights`, write-once output
//! blocks. Nothing enforced it: a refactor could quietly reintroduce a
//! per-request `Vec`, a lock in a worker closure, or a panicking slice
//! index on the serve path. This sixth stage turns the convention into a
//! machine-checked invariant using the same item facts and call-graph as
//! the determinism and concurrency passes:
//!
//! * **TL014** — a heap allocation ([`HFactKind::HeapAlloc`]: `Vec::new`/
//!   `with_capacity`, `vec![]`, `.to_vec()`, `.collect()`, `.clone()`,
//!   `Box::new`, `String::from`, `format!`) transitively reachable from a
//!   latency-critical root, unless the site carries a reasoned
//!   `// lint: alloc(reason)` waiver.
//! * **TL015** — a blocking operation ([`HFactKind::Blocking`]:
//!   `Mutex`/`RwLock` lock, channel `recv`, `std::fs`/`std::io` calls,
//!   `thread::sleep`) reachable from a hot root. No reasoned waiver exists:
//!   blocking is cut out of the hot path or explicitly `allow(TL015)`ed.
//! * **TL016** — a panic-capable op ([`HFactKind::PanicCapable`]: slice/
//!   array indexing, `copy_from_slice`, integer division by a non-literal
//!   divisor) on the serve path, unless the site carries a
//!   `// lint: panicfree(reason)` waiver stating the bounds argument.
//!
//! The latency-critical roots are the serving engine's methods
//! (`ServingEngine::run`/`submit`/the flush path), the batched inference
//! fast path (`predict_proba*`), every `*_into` kernel entry point, and the
//! sharded retrofit sweep (`retrofit_sharded`). Setup code — `new`/
//! `default`/`with_*`/`load*` constructors and the one-time `*Scratch`/
//! `Packed*` builders — is exempt by a *root-relative cut*: the BFS never
//! walks into a setup function, so a `Vec::with_capacity` inside
//! `InferScratch::new` stays silent while the same call inline in
//! `predict_proba_batched` fires. There are no path allowlists; the waivers
//! on the surviving sites are the audit, exactly as the unsafe rule does.
//!
//! Each violation carries the full root → … → site chain in TL007 style,
//! reported once per fact with the first (shortest) chain found, roots
//! scanned in definition order for deterministic output.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::items::{FnInfo, HFact, HFactKind};
use crate::rules::{Rule, Violation};
use crate::taint::chain_to;

/// Runs the hot-path reachability walk: BFS from every latency-critical
/// root, cutting setup functions, firing TL014/TL015/TL016 at each
/// unwaived fact with the root-relative chain.
pub fn analyze(graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut reported: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| is_hot_root(&graph.fns[i]))
        .collect();
    for &root in &roots {
        let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
        let mut seen = vec![false; graph.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(at) = queue.pop_front() {
            let f = &graph.fns[at];
            for (fact_idx, fact) in f.hfacts.iter().enumerate() {
                let rule = match fact.kind {
                    HFactKind::HeapAlloc => Rule::Tl014,
                    HFactKind::Blocking => Rule::Tl015,
                    HFactKind::PanicCapable => Rule::Tl016,
                };
                if !rule.applies_to(&f.file)
                    || suppressed(fact, rule)
                    || reported.contains_key(&(at, fact_idx))
                {
                    continue;
                }
                reported.insert((at, fact_idx), ());
                out.push(Violation {
                    rule,
                    file: f.file.clone(),
                    line: fact.line,
                    excerpt: format!("{} [{}]", fact.what, fact.kind.describe()),
                    chain: chain_to(graph, &parent, root, at),
                });
            }
            for &(next, _) in &graph.edges[at] {
                if !seen[next] && !is_setup(&graph.fns[next]) {
                    seen[next] = true;
                    parent[next] = Some(at);
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

/// True for the latency-critical roots the walk starts from: serving-engine
/// and router methods (minus their constructors — routing sits upstream of
/// every per-request serving latency, so its dispatch/collect surface is
/// held to the same hygiene bar), the batched inference fast path, the int8
/// quantized serving path, every `*_into` kernel entry point, and the
/// sharded retrofit sweep. The quantized roots cover `predict_proba_quantized`
/// (and its `logits_quantized` feeder), *not* the tape-backed
/// `predict_proba`, which allocates a graph by design.
fn is_hot_root(f: &FnInfo) -> bool {
    if is_setup(f) {
        return false;
    }
    f.impl_type.as_deref() == Some("ServingEngine")
        || f.impl_type.as_deref() == Some("Router")
        || f.name.starts_with("predict_proba_batched")
        || f.name.starts_with("predict_proba_quantized")
        || f.name.starts_with("logits_quantized")
        || f.name.ends_with("_into")
        || f.name == "retrofit_sharded"
}

/// The root-relative setup cut: constructors (`new`, `default`, `with_*`,
/// `load*`), the pack/quantize weight builders (`pack_weights`,
/// `quantize_weights` — run once when a model is wrapped for serving), and
/// methods of the one-time scratch/packing builders (`*Scratch`, `Packed*`,
/// `Quantized*`) run once per engine or training run, so their allocations
/// are the point — the BFS neither starts from nor walks into them.
/// Anything they miss fires at the steady-state call site instead.
fn is_setup(f: &FnInfo) -> bool {
    f.name == "new"
        || f.name == "default"
        || f.name.starts_with("with_")
        || f.name == "load"
        || f.name.starts_with("load_")
        || f.name == "pack_weights"
        || f.name == "quantize_weights"
        || f.impl_type
            .as_deref()
            .map(|t| {
                t.ends_with("Scratch") || t.starts_with("Packed") || t.starts_with("Quantized")
            })
            .unwrap_or(false)
}

/// True when the fact's line suppresses `rule` — an explicit `allow(TLxxx)`
/// or the matching reasoned waiver (`alloc(reason)` / `panicfree(reason)`,
/// already resolved into `waived` by the extractor).
fn suppressed(fact: &HFact, rule: Rule) -> bool {
    fact.waived || fact.allows.iter().any(|a| a == rule.code())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::items::extract;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn analyze_src(src: &str) -> Vec<Violation> {
        let lines = scan(src);
        let ex = extract("crates/core/src/serve.rs", &lex(src), &lines);
        analyze(&build(ex.fns))
    }

    #[test]
    fn reachable_allocation_is_reported_with_chain() {
        let src = "impl ServingEngine {\n    fn run(&mut self) { helper(); }\n}\nfn helper() { leaf(); }\nfn leaf(xs: &[f32]) {\n    let v = xs.to_vec();\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl014);
        let names: Vec<&str> = v[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["ServingEngine::run", "helper", "leaf"]);
    }

    #[test]
    fn blocking_and_panic_ops_fire_their_rules() {
        let src = "fn gemm_into(m: &M, out: &mut [f32], k: usize) {\n    let g = m.lock();\n    out[0] = 1.0;\n    let b = n / k;\n}\n";
        let v = analyze_src(src);
        let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![Rule::Tl015, Rule::Tl016, Rule::Tl016]);
    }

    #[test]
    fn setup_constructors_are_cut_root_relatively() {
        // Allocations inside `new`/`with_*` and `*Scratch` methods never
        // fire — neither as roots nor via the walk — but the same shape
        // inline in a hot fn does.
        let src = "impl ServingEngine {\n    fn new() -> Self { let q = Vec::with_capacity(64); Self {} }\n    fn run(&mut self) { self.new_scratch(); }\n    fn with_cache(n: usize) { let c = vec![0u8; n]; }\n    fn new_scratch(&self) {}\n}\nimpl InferScratch {\n    fn resize(&mut self) { let b = Vec::with_capacity(9); }\n}\nfn predict_proba_batched(s: &mut InferScratch) {\n    let fresh = Vec::with_capacity(8);\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].file, "crates/core/src/serve.rs");
        assert!(v[0].excerpt.contains("Vec::with_capacity"));
        assert_eq!(v[0].chain.len(), 1, "fires inline in the hot root");
        assert_eq!(v[0].chain[0].name, "predict_proba_batched");
    }

    #[test]
    fn unreached_allocations_stay_silent() {
        let src = "fn orphan() {\n    let v = Vec::with_capacity(4);\n    let g = m.lock();\n}\nfn also_cold() { orphan(); }\n";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn waivers_and_allows_silence_sites() {
        let src = "impl ServingEngine {\n    fn submit(&mut self) {\n        let a = buf.to_vec(); // lint: alloc(amortized: doubles at most log n times)\n        let b = probs[0]; // lint: panicfree(dims validated at load)\n        let g = m.lock(); // lint: allow(TL015)\n        let c = buf.to_vec();\n    }\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Tl014);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn quantized_serving_path_is_a_root_with_chain_and_setup_cut() {
        // `predict_proba_quantized` is latency-critical: an unwaived
        // allocation below it fires with the full chain. The one-time
        // weight quantizer and `Quantized*` methods sit under the setup
        // cut, and the tape-backed `predict_proba` is not a root at all.
        let src = "fn predict_proba_quantized(x: &[f32]) { quantize_rows(x); }\n\
                   fn quantize_rows(x: &[f32]) {\n    let codes = x.to_vec();\n}\n\
                   fn quantize_weights() { let panel = Vec::with_capacity(64); }\n\
                   impl QuantizedWeights {\n    fn dims(&self) { let d = Vec::with_capacity(4); }\n}\n\
                   fn predict_proba(x: &[f32]) { let tape = Vec::with_capacity(99); }\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Tl014);
        let names: Vec<&str> = v[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["predict_proba_quantized", "quantize_rows"]);
    }

    #[test]
    fn retrofit_sweep_is_a_root() {
        let src = "fn retrofit_sharded() { sweep(); }\nfn sweep(ids: &[u32]) {\n    let owned = ids.to_vec();\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl014);
        let names: Vec<&str> = v[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["retrofit_sharded", "sweep"]);
    }
}
