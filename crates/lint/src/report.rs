//! JSON rendering for the lint CLI.
//!
//! Hand-rolled (the crate is std-only) but schema-stable: the shapes here
//! are asserted by the `json_contract` integration test, so downstream
//! tooling can parse `--json` output without a JSON dependency drifting
//! underneath it.
//!
//! Two line shapes exist:
//!
//! * a **diagnostic** per violation — `rule`, `file`, `line`,
//!   `description`, `excerpt`, `advisory`, and the (possibly empty) TL007/
//!   TL011 call `chain`;
//! * one trailing **summary** object — totals, baseline diff state,
//!   per-stage wall-times (`stages`), and per-rule hit counts (`rules`,
//!   every rule present, zeros included, so counts are diffable
//!   PR-over-PR).

use crate::baseline;
use crate::rules::{Rule, Violation};
use crate::{StageTiming, ALL_RULES};

/// Renders one violation as a single-line JSON object.
pub fn violation_json(v: &Violation) -> String {
    let mut chain = String::from("[");
    for (i, hop) in v.chain.iter().enumerate() {
        if i > 0 {
            chain.push(',');
        }
        chain.push_str(&format!(
            "{{\"fn\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
            json_escape(&hop.name),
            json_escape(&hop.file),
            hop.line
        ));
    }
    chain.push(']');
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"description\":\"{}\",\"excerpt\":\"{}\",\"advisory\":{},\"chain\":{}}}",
        v.rule.code(),
        json_escape(&v.file),
        v.line,
        json_escape(v.rule.description()),
        json_escape(&v.excerpt),
        v.rule.is_advisory(),
        chain
    )
}

/// Renders the trailing summary object for `--check --json`.
pub fn summary_json(
    violations: &[Violation],
    diff: &baseline::Diff,
    timings: &[StageTiming],
) -> String {
    let blocking = diff
        .regressions
        .iter()
        .filter(|(rule, _, _, _)| {
            !Rule::from_code(rule)
                .map(Rule::is_advisory)
                .unwrap_or(false)
        })
        .count();
    let stages: Vec<String> = timings
        .iter()
        .map(|t| format!("{{\"stage\":\"{}\",\"millis\":{}}}", t.stage, t.millis))
        .collect();
    let rules: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            let hits = violations.iter().filter(|v| v.rule == *r).count();
            format!("\"{}\":{hits}", r.code())
        })
        .collect();
    format!(
        "{{\"summary\":true,\"total\":{},\"regressing_entries\":{},\"blocking_entries\":{},\"ok\":{},\"stages\":[{}],\"rules\":{{{}}}}}",
        violations.len(),
        diff.regressions.len(),
        blocking,
        blocking == 0,
        stages.join(","),
        rules.join(",")
    )
}

/// Renders `BENCH_lint.json`: analyzer cost and violation trajectory as one
/// machine-readable line. `min_nanos` pairs each stage (in [`crate::STAGES`]
/// order) with its minimum wall-time across the benchmark's repeated runs —
/// the same min-of-N discipline as `BENCH_kernels.json`, at nanosecond
/// resolution because the whole pipeline finishes in milliseconds. Rule hit
/// counts list every rule, zeros included, so counts diff PR-over-PR.
pub fn bench_json(
    runs: usize,
    files: usize,
    min_nanos: &[(&'static str, u128)],
    violations: &[Violation],
) -> String {
    let stages: Vec<String> = min_nanos
        .iter()
        .map(|(stage, nanos)| {
            format!(
                "{{\"stage\":\"{stage}\",\"min_nanos\":{nanos},\"min_millis\":{:.3}}}",
                *nanos as f64 / 1e6
            )
        })
        .collect();
    let total: u128 = min_nanos.iter().map(|(_, n)| n).sum();
    let rules: Vec<String> = ALL_RULES
        .iter()
        .map(|r| {
            let hits = violations.iter().filter(|v| v.rule == *r).count();
            format!("\"{}\":{hits}", r.code())
        })
        .collect();
    format!(
        "{{\"bench\":\"lint\",\"runs\":{runs},\"files\":{files},\"total_min_nanos\":{total},\"total_min_millis\":{:.3},\"stages\":[{}],\"rules\":{{{}}},\"total_violations\":{}}}",
        total as f64 / 1e6,
        stages.join(","),
        rules.join(","),
        violations.len()
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Hop;

    #[test]
    fn violation_json_includes_chain_hops() {
        let v = Violation {
            rule: Rule::Tl011,
            file: "crates/core/src/pool.rs".to_string(),
            line: 9,
            excerpt: "Mutex [interior-mutability type (shared mutable state)]".to_string(),
            chain: vec![Hop {
                name: "run_pool".to_string(),
                file: "crates/core/src/pool.rs".to_string(),
                line: 1,
            }],
        };
        let json = violation_json(&v);
        assert!(json.contains("\"rule\":\"TL011\""));
        assert!(json.contains("\"chain\":[{\"fn\":\"run_pool\""));
    }

    #[test]
    fn summary_lists_every_rule_and_stage() {
        let timings = vec![
            StageTiming {
                stage: "scan",
                millis: 3,
                nanos: 3_000_000,
            },
            StageTiming {
                stage: "concurrency",
                millis: 1,
                nanos: 1_000_000,
            },
        ];
        let diff = baseline::Diff {
            regressions: Vec::new(),
            improvements: Vec::new(),
        };
        let json = summary_json(&[], &diff, &timings);
        for rule in ALL_RULES {
            assert!(json.contains(&format!("\"{}\":0", rule.code())), "{json}");
        }
        assert!(json.contains("{\"stage\":\"scan\",\"millis\":3}"));
        assert!(json.contains("\"ok\":true"));
    }

    #[test]
    fn bench_json_lists_every_stage_and_rule() {
        let mins: Vec<(&'static str, u128)> =
            crate::STAGES.iter().map(|s| (*s, 1_500_000u128)).collect();
        let json = bench_json(9, 34, &mins, &[]);
        for stage in crate::STAGES {
            assert!(
                json.contains(&format!("{{\"stage\":\"{stage}\",\"min_nanos\":1500000")),
                "{json}"
            );
        }
        for rule in ALL_RULES {
            assert!(json.contains(&format!("\"{}\":0", rule.code())), "{json}");
        }
        assert!(json.contains("\"runs\":9"));
        assert!(json.contains("\"min_millis\":1.500"));
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
