//! Concurrency-safety dataflow over the workspace call-graph.
//!
//! PRs 2 and 5 moved training, eval sweeps, GEMM row-blocks, and serving
//! batches onto scoped-thread parallelism — exactly the machinery that can
//! silently break the bitwise-identical-at-1/2/4-workers invariant. This
//! fifth stage complements the determinism taint pass with *shared mutable
//! state* analysis over the same item facts and call-graph:
//!
//! * **TL010** — `unsafe` code anywhere in library code, unless the site
//!   carries a reasoned `// lint: unsafe(reason)` waiver. Fires at the
//!   site; the waiver text is the written-down safety argument.
//! * **TL011** — an interior-mutability type (`Mutex`, `RwLock`, `RefCell`,
//!   `Cell`, `UnsafeCell`, once/lazy cells, atomics, `static mut`)
//!   *reachable* from an executor dispatch point. Function-level facts fire
//!   only when a BFS from a dispatching function reaches them, and carry
//!   the full dispatch → … → state chain in TL007 style. File-level facts
//!   (struct fields, statics) fire at the site without a chain: the
//!   name-based call-graph cannot see field accesses, so declarations are
//!   flagged conservatively wherever they sit.
//! * **TL012** — an atomic memory ordering weaker than `SeqCst`
//!   (`Relaxed`/`Acquire`/`Release`/`AcqRel`). Fires at the site.
//! * **TL013** — a compound floating-point accumulation (`acc += x`) onto
//!   state declared *outside* a dispatched worker closure: the
//!   non-associative-reduction smell. A separate token walk
//!   ([`check_closures`]) inspects the closure arguments of each dispatch
//!   call site directly, since reductions are an expression-level property
//!   the per-function facts cannot carry.
//!
//! TL011/TL012/TL013 sites are silenced by `// lint: concurrency(reason)`,
//! TL010 by `// lint: unsafe(reason)`; both waivers *must* carry a
//! non-empty reason. Per-rule `// lint: allow(TLxxx)` works as everywhere
//! else. The executor core (`tensor::exec`) is deliberately *not* exempt:
//! its claim counter and `Relaxed` ordering carry reasoned waivers instead,
//! so the safety argument lives next to the code.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::items::{is_dispatch, CFact, CFactKind};
use crate::lexer::{Tok, Token};
use crate::rules::{Rule, Violation};
use crate::scanner::SourceLine;
use crate::taint::chain_to;

/// Runs the graph-level analysis: TL010/TL012 at every fact site, TL011 at
/// file-scope sites and — with chains — at function-level sites reachable
/// from a dispatch root. `file_cfacts` pairs each workspace-relative path
/// with the facts found outside any function body in that file.
pub fn analyze(graph: &CallGraph, file_cfacts: &[(String, CFact)]) -> Vec<Violation> {
    let mut out = Vec::new();

    // Site-level rules over function bodies: unsafe code and weak orderings
    // are flagged wherever they sit — reachability does not make an
    // unwaived `unsafe` block any safer.
    for f in &graph.fns {
        for fact in &f.cfacts {
            let rule = match fact.kind {
                CFactKind::UnsafeCode => Rule::Tl010,
                CFactKind::WeakOrdering => Rule::Tl012,
                CFactKind::InteriorMutability => continue, // needs reachability
            };
            if rule.applies_to(&f.file) && !suppressed(fact, rule) {
                out.push(site_violation(rule, &f.file, fact));
            }
        }
    }

    // File-scope facts: declarations (struct fields, statics, unsafe impl)
    // have no containing function, so every kind fires at the site.
    for (file, fact) in file_cfacts {
        let rule = match fact.kind {
            CFactKind::UnsafeCode => Rule::Tl010,
            CFactKind::WeakOrdering => Rule::Tl012,
            CFactKind::InteriorMutability => Rule::Tl011,
        };
        if rule.applies_to(file) && !suppressed(fact, rule) {
            out.push(site_violation(rule, file, fact));
        }
    }

    // Reachability pass: BFS from every function containing a dispatch
    // site. A shared-state fact is reported once, with the first (shortest)
    // chain that reaches it; roots are scanned in definition order so the
    // output is deterministic. The root's own facts count as hop zero — an
    // atomic next to the dispatch is still shared with the workers.
    let mut reported: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| !graph.fns[i].dispatches.is_empty())
        .collect();
    for &root in &roots {
        let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
        let mut seen = vec![false; graph.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(at) = queue.pop_front() {
            let f = &graph.fns[at];
            for (fact_idx, fact) in f.cfacts.iter().enumerate() {
                if fact.kind != CFactKind::InteriorMutability
                    || !Rule::Tl011.applies_to(&f.file)
                    || suppressed(fact, Rule::Tl011)
                    || reported.contains_key(&(at, fact_idx))
                {
                    continue;
                }
                reported.insert((at, fact_idx), ());
                out.push(Violation {
                    rule: Rule::Tl011,
                    file: f.file.clone(),
                    line: fact.line,
                    excerpt: format!("{} [{}]", fact.what, fact.kind.describe()),
                    chain: chain_to(graph, &parent, root, at),
                });
            }
            for &(next, _) in &graph.edges[at] {
                if !seen[next] {
                    seen[next] = true;
                    parent[next] = Some(at);
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

/// TL013: inspects the closure arguments of each dispatch call site in one
/// file for compound float accumulation onto non-closure-local state.
///
/// Within the span of a dispatch call (`executor.map(n, |i| ...)`,
/// `exec.for_each(items, |i, x| { ... })`, `scope.spawn(|| ...)`), the
/// closure's locals are its pipe-delimited parameters plus every `let`
/// binding in the span. A `+=`/`-=`/`*=`/`/=` whose target's base
/// identifier is not local is flagged when the accumulation is visibly
/// floating-point: a float literal or `f32`/`f64` in the statement, or an
/// accumulator-style target name (`sum`, `acc`, `total`, `loss`, `mean`).
pub fn check_closures(path: &str, tokens: &[Token], lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    if !Rule::Tl013.applies_to(path) {
        return out;
    }
    let meta = |line: usize| lines.get(line.saturating_sub(1));
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(name) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        let is_call = tokens
            .get(i + 1)
            .map(|t| matches!(t.kind, Tok::Open('(')))
            .unwrap_or(false);
        let in_test = meta(tokens[i].line).map(|l| l.in_test).unwrap_or(true);
        if !is_call || !is_dispatch(tokens, i, name) || in_test {
            i += 1;
            continue;
        }

        // Span of the dispatch call's argument list.
        let start = i + 2;
        let mut depth = 1usize;
        let mut end = start;
        while end < tokens.len() && depth > 0 {
            match tokens[end].kind {
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        let span = &tokens[start..end.saturating_sub(1)];

        // Closure locals: pipe-delimited parameters plus `let` bindings.
        let mut locals: Vec<&str> = Vec::new();
        let mut j = 0usize;
        while j < span.len() {
            if span[j].is_punct("|") {
                j += 1;
                while j < span.len() && !span[j].is_punct("|") {
                    if let Some(id) = span[j].ident() {
                        locals.push(id);
                    }
                    j += 1;
                }
            } else if span[j].ident() == Some("let") {
                let mut k = j + 1;
                if span.get(k).and_then(Token::ident) == Some("mut") {
                    k += 1;
                }
                if let Some(id) = span.get(k).and_then(Token::ident) {
                    locals.push(id);
                }
            }
            j += 1;
        }

        // Compound assignments onto non-local targets.
        for (op_idx, op) in span.iter().enumerate() {
            if !(op.is_punct("+=") || op.is_punct("-=") || op.is_punct("*=") || op.is_punct("/=")) {
                continue;
            }
            let line_meta = meta(op.line);
            let silenced = line_meta
                .map(|l| l.in_test || l.conc_reason.is_some() || l.allows("TL013"))
                .unwrap_or(false);
            if silenced {
                continue;
            }
            // Statement extent around the operator.
            let stmt_start = span[..op_idx]
                .iter()
                .rposition(|t| matches!(t.kind, Tok::Punct(";") | Tok::Open('{') | Tok::Close('}')))
                .map(|p| p + 1)
                .unwrap_or(0);
            let stmt_end = span[op_idx..]
                .iter()
                .position(|t| t.is_punct(";"))
                .map(|p| op_idx + p)
                .unwrap_or(span.len());
            let Some(base) = span[stmt_start..op_idx]
                .iter()
                .find_map(|t| t.ident().filter(|id| *id != "mut"))
            else {
                continue;
            };
            if locals.contains(&base) {
                continue;
            }
            let lower = base.to_lowercase();
            let named_like_accumulator = ["sum", "acc", "total", "loss", "mean"]
                .iter()
                .any(|n| lower.contains(n));
            let stmt_is_float = span[stmt_start..stmt_end]
                .iter()
                .any(|t| matches!(t.kind, Tok::Float) || matches!(t.ident(), Some("f32" | "f64")));
            if named_like_accumulator || stmt_is_float {
                out.push(Violation {
                    rule: Rule::Tl013,
                    file: path.to_string(),
                    line: op.line,
                    excerpt: line_meta
                        .map(|l| l.raw.trim().to_string())
                        .unwrap_or_else(|| format!("{base} += ...")),
                    chain: Vec::new(),
                });
            }
        }
        i = end;
    }
    out
}

/// True when the fact's line suppresses `rule` — either an explicit
/// `allow(TLxxx)` or the matching reasoned waiver (already resolved into
/// `waived` by the extractor).
fn suppressed(fact: &CFact, rule: Rule) -> bool {
    fact.waived || fact.allows.iter().any(|a| a == rule.code())
}

fn site_violation(rule: Rule, file: &str, fact: &CFact) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line: fact.line,
        excerpt: format!("{} [{}]", fact.what, fact.kind.describe()),
        chain: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::items::extract;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn analyze_src(src: &str) -> Vec<Violation> {
        let lines = scan(src);
        let ex = extract("crates/core/src/pool.rs", &lex(src), &lines);
        let file_cfacts: Vec<(String, CFact)> = ex
            .file_cfacts
            .iter()
            .map(|f| ("crates/core/src/pool.rs".to_string(), f.clone()))
            .collect();
        analyze(&build(ex.fns), &file_cfacts)
    }

    #[test]
    fn reachable_mutex_is_reported_with_chain() {
        let src = "fn run_pool(executor: &Executor) {\n    executor.map(4, |i| evaluate(i));\n}\nfn evaluate(i: usize) -> u64 { lookup(i) }\nfn lookup(i: usize) -> u64 {\n    let cache = Mutex::new(0u64);\n    i as u64\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl011);
        let names: Vec<&str> = v[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["run_pool", "evaluate", "lookup"]);
    }

    #[test]
    fn unreachable_interior_mutability_is_not_flagged() {
        let src = "fn run_pool(executor: &Executor) {\n    executor.map(4, |i| i);\n}\nfn orphan() {\n    let cache = Mutex::new(0u64);\n}\n";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn file_scope_facts_fire_without_a_chain() {
        let src = "struct Clock {\n    now: Cell<u64>,\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl011);
        assert!(v[0].chain.is_empty());
    }

    #[test]
    fn unsafe_and_weak_ordering_fire_at_site() {
        let src =
            "fn f() {\n    let n = unsafe { read() };\n    let o = x.load(Ordering::Relaxed);\n}\n";
        let v = analyze_src(src);
        let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![Rule::Tl010, Rule::Tl012]);
    }

    #[test]
    fn reasoned_waivers_silence_their_rules() {
        let src = "fn run_pool(executor: &Executor) {\n    let next = AtomicUsize::new(0); // lint: concurrency(claim counter; results reassembled by index)\n    let i = next.fetch_add(1, Ordering::Relaxed); // lint: concurrency(atomic RMW yields unique indices)\n    let p = unsafe { buf.as_mut_ptr() }; // lint: unsafe(chunks are disjoint by construction)\n    executor.map(4, |i| i);\n}\n";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn tl013_flags_external_float_accumulation_only() {
        let src = "fn reduce(executor: &Executor, total: &mut f32) {\n    executor.for_each(chunks, |i, chunk| {\n        total += chunk;\n    });\n    executor.for_each(chunks, |i, chunk| {\n        let mut local = 0.0;\n        local += chunk;\n    });\n}\n";
        let lines = scan(src);
        let v = check_closures("crates/core/src/pool.rs", &lex(src), &lines);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl013);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn tl013_ignores_integer_counters_and_waived_lines() {
        let src = "fn reduce(executor: &Executor) {\n    executor.for_each(chunks, |i, chunk| {\n        count += 1;\n        weight_sum += chunk; // lint: concurrency(merged in index order after join)\n    });\n}\n";
        let lines = scan(src);
        assert!(check_closures("crates/core/src/pool.rs", &lex(src), &lines).is_empty());
    }

    #[test]
    fn tl013_skips_bench_and_plain_iterator_maps() {
        let src = "fn reduce(xs: &[f32]) {\n    let mut total = 0.0;\n    xs.iter().for_each(|x| total += x);\n}\n";
        let lines = scan(src);
        // `xs.iter().for_each` is not a dispatch: the receiver is `)`.
        assert!(check_closures("crates/core/src/pool.rs", &lex(src), &lines).is_empty());
        let src2 = "fn reduce(executor: &Executor) {\n    executor.for_each(chunks, |i, chunk| { total += chunk; });\n}\n";
        let lines2 = scan(src2);
        assert!(check_closures("crates/bench/src/lib.rs", &lex(src2), &lines2).is_empty());
    }
}
