//! A small comment/string-aware scanner for Rust source.
//!
//! The rule set only needs line-level pattern matching, but naive substring
//! search would fire on comments, doc examples, and string literals. This
//! scanner produces a *cleaned* view of each line — comments removed and
//! string/char literal contents blanked out — together with the metadata the
//! rules need: whether the line is a doc comment, whether it lives inside
//! test-only code (`#[cfg(test)]` / `#[test]` items), and any inline
//! `lint: allow(...)` suppressions found in trailing comments.
//!
//! The scanner is deliberately not a full lexer: it tracks exactly the state
//! needed to distinguish code from non-code (line comments, nested block
//! comments, string/raw-string/byte-string literals, char literals vs
//! lifetimes) and leaves everything else to the per-rule matchers.

/// One source line plus the metadata rules match against.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The original line, verbatim (used for excerpts in reports).
    pub raw: String,
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// True when the line carries outer/inner doc comments (`///`, `//!`,
    /// `/** .. */`, `/*! .. */`).
    pub is_doc: bool,
    /// True when any part of the line is inside test-only code.
    pub in_test: bool,
    /// Rule codes suppressed on this line via `lint: allow(TLxxx, ...)`.
    pub allows: Vec<String>,
    /// Justification from a `lint: nondeterministic(reason)` directive.
    /// Suppresses the determinism rules (TL007–TL009) at this site. An
    /// empty reason is rejected at parse time — the directive must say *why*
    /// the nondeterminism is acceptable — so `None` here means either no
    /// directive or a reasonless one, and the rules fire either way.
    pub nondet_reason: Option<String>,
    /// Justification from a `lint: unsafe(reason)` directive. Waives TL010
    /// at this site; the reason is the written safety argument, so an empty
    /// one waives nothing.
    pub unsafe_reason: Option<String>,
    /// Justification from a `lint: concurrency(reason)` directive. Waives
    /// the shared-state rules (TL011–TL013) at this site; the reason must
    /// argue why the shared state cannot break worker-count invariance.
    pub conc_reason: Option<String>,
    /// Justification from a `lint: alloc(reason)` directive. Waives the
    /// hot-path allocation rule (TL014) at this site; the reason must argue
    /// why the allocation is acceptable on a latency-critical path (one-time
    /// growth, amortised scratch, cold branch).
    pub alloc_reason: Option<String>,
    /// Justification from a `lint: panicfree(reason)` directive. Waives the
    /// hot-path panic rule (TL016) at this site; the reason is the written
    /// bounds/precondition argument for why the op cannot panic.
    pub panicfree_reason: Option<String>,
}

impl SourceLine {
    /// Whether `rule_code` is suppressed on this line.
    pub fn allows(&self, rule_code: &str) -> bool {
        self.allows.iter().any(|a| a == rule_code)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Block comment nesting depth; `doc` marks `/**` / `/*!` forms.
    Block {
        depth: usize,
        doc: bool,
    },
    Str,
    RawStr {
        hashes: usize,
    },
    Char,
}

/// Scans `source` into cleaned, annotated lines.
pub fn scan(source: &str) -> Vec<SourceLine> {
    let mut lines = clean(source);
    mark_test_regions(&mut lines);
    propagate_standalone_allows(&mut lines);
    lines
}

/// Pass 3: a directive on a comment-only line also suppresses the next line
/// carrying code. Trailing same-line directives remain the primary form, but
/// rustfmt wraps long statements, which would detach a trailing comment from
/// the construct it suppresses; a standalone comment directly above survives
/// reformatting.
fn propagate_standalone_allows(lines: &mut [SourceLine]) {
    let mut pending: Vec<String> = Vec::new();
    let mut pending_nondet: Option<String> = None;
    let mut pending_unsafe: Option<String> = None;
    let mut pending_conc: Option<String> = None;
    let mut pending_alloc: Option<String> = None;
    let mut pending_panicfree: Option<String> = None;
    for line in lines.iter_mut() {
        if line.code.trim().is_empty() {
            pending.extend(line.allows.iter().cloned());
            if line.nondet_reason.is_some() {
                pending_nondet = line.nondet_reason.clone();
            }
            if line.unsafe_reason.is_some() {
                pending_unsafe = line.unsafe_reason.clone();
            }
            if line.conc_reason.is_some() {
                pending_conc = line.conc_reason.clone();
            }
            if line.alloc_reason.is_some() {
                pending_alloc = line.alloc_reason.clone();
            }
            if line.panicfree_reason.is_some() {
                pending_panicfree = line.panicfree_reason.clone();
            }
        } else {
            if !pending.is_empty() {
                line.allows.append(&mut pending);
            }
            if let Some(reason) = pending_nondet.take() {
                if line.nondet_reason.is_none() {
                    line.nondet_reason = Some(reason);
                }
            }
            if let Some(reason) = pending_unsafe.take() {
                if line.unsafe_reason.is_none() {
                    line.unsafe_reason = Some(reason);
                }
            }
            if let Some(reason) = pending_conc.take() {
                if line.conc_reason.is_none() {
                    line.conc_reason = Some(reason);
                }
            }
            if let Some(reason) = pending_alloc.take() {
                if line.alloc_reason.is_none() {
                    line.alloc_reason = Some(reason);
                }
            }
            if let Some(reason) = pending_panicfree.take() {
                if line.panicfree_reason.is_none() {
                    line.panicfree_reason = Some(reason);
                }
            }
        }
    }
}

/// Pass 1: strip comments, blank literal contents, collect doc/allow info.
fn clean(source: &str) -> Vec<SourceLine> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for (idx, raw) in source.lines().enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment_text = String::new();
        let mut is_doc = false;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => {
                    if c == '/' && next == Some('/') {
                        // Line comment; `///` and `//!` are doc comments.
                        let third = chars.get(i + 2).copied();
                        if third == Some('/') && chars.get(i + 3).copied() != Some('/') {
                            is_doc = true;
                        }
                        if third == Some('!') {
                            is_doc = true;
                        }
                        comment_text.push_str(&chars[i..].iter().collect::<String>());
                        break;
                    } else if c == '/' && next == Some('*') {
                        let third = chars.get(i + 2).copied();
                        let doc = third == Some('*') && chars.get(i + 3).copied() != Some('*')
                            || third == Some('!');
                        if doc {
                            is_doc = true;
                        }
                        state = State::Block { depth: 1, doc };
                        i += 2;
                        continue;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                        continue;
                    } else if is_raw_string_start(&chars, i) {
                        // r"..."  r#"..."#  br##"..."##  (b consumed earlier)
                        let mut j = i + 1; // skip the `r`
                        let mut hashes = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        code.push_str(&"r".to_string());
                        code.push_str(&"#".repeat(hashes));
                        code.push('"');
                        state = State::RawStr { hashes };
                        i = j + 1;
                        continue;
                    } else if c == '\'' {
                        if is_lifetime(&chars, i) {
                            code.push(c);
                            i += 1;
                            continue;
                        }
                        code.push('\'');
                        state = State::Char;
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
                State::Block { depth, doc } => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::Block {
                                depth: depth - 1,
                                doc,
                            };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block {
                            depth: depth + 1,
                            doc,
                        };
                        i += 2;
                    } else {
                        if doc {
                            is_doc = true;
                        }
                        comment_text.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped character
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr { hashes } => {
                    if c == '"' && raw_string_closes(&chars, i, hashes) {
                        code.push('"');
                        code.push_str(&"#".repeat(hashes));
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '\'' {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // Unterminated single-line states fall back to code at end of line
        // (strings can span lines only in raw/regular multiline form, which
        // the state machine already carries across the loop).
        if state == State::Char {
            state = State::Code;
        }
        let directives = parse_directives(&comment_text);
        out.push(SourceLine {
            number: idx + 1,
            raw: raw.to_string(),
            code,
            is_doc,
            in_test: false,
            allows: directives.allows,
            nondet_reason: directives.nondet,
            unsafe_reason: directives.unsafe_reason,
            conc_reason: directives.conc,
            alloc_reason: directives.alloc,
            panicfree_reason: directives.panicfree,
        });
    }
    out
}

/// True when `chars[i]` starts a raw (or raw byte) string literal.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if chars[i] != 'r' {
        return false;
    }
    // `r` must be its own token, not the tail of an identifier like `var`.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            // allow the `b` of a raw byte string prefix
            if !(prev == 'b' && (i < 2 || !is_ident(chars[i - 2]))) {
                return false;
            }
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// True when the `"` at `chars[i]` is followed by `hashes` `#` characters.
fn raw_string_closes(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a` (lifetime) from `'a'` (char literal) at a `'`.
fn is_lifetime(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c) if c.is_alphabetic() || c == '_' => chars.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All directives parsed out of one line's `lint:` comments.
#[derive(Debug, Default)]
struct Directives {
    allows: Vec<String>,
    nondet: Option<String>,
    unsafe_reason: Option<String>,
    conc: Option<String>,
    alloc: Option<String>,
    panicfree: Option<String>,
}

/// Extracts directives from `lint:` comments: `allow(TL001, TL002)` rule
/// suppressions plus the reasoned waivers — `nondeterministic(reason)`
/// for the determinism rules, `unsafe(reason)` for TL010,
/// `concurrency(reason)` for the shared-state rules, `alloc(reason)` for
/// the hot-path allocation rule, and `panicfree(reason)` for the hot-path
/// panic rule. Several may appear in one comment (`// lint: allow(TL003),
/// nondeterministic(telemetry only)`). A reasoned waiver with an empty
/// reason is ignored — the waiver must justify itself.
fn parse_directives(comment: &str) -> Directives {
    let mut out = Directives::default();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + 5..];
        let mut directives = rest.trim_start();
        loop {
            if let Some(args) = directives.strip_prefix("allow(") {
                let Some(end) = args.find(')') else { break };
                for code in args[..end].split(',') {
                    let code = code.trim();
                    if !code.is_empty() {
                        out.allows.push(code.to_string());
                    }
                }
                directives = args[end + 1..].trim_start();
            } else if let Some(args) = strip_reasoned(directives, "nondeterministic(") {
                let Some((reason, after)) = take_reason(args) else {
                    break;
                };
                if out.nondet.is_none() {
                    out.nondet = reason;
                }
                directives = after;
            } else if let Some(args) = strip_reasoned(directives, "unsafe(") {
                let Some((reason, after)) = take_reason(args) else {
                    break;
                };
                if out.unsafe_reason.is_none() {
                    out.unsafe_reason = reason;
                }
                directives = after;
            } else if let Some(args) = strip_reasoned(directives, "concurrency(") {
                let Some((reason, after)) = take_reason(args) else {
                    break;
                };
                if out.conc.is_none() {
                    out.conc = reason;
                }
                directives = after;
            } else if let Some(args) = strip_reasoned(directives, "alloc(") {
                let Some((reason, after)) = take_reason(args) else {
                    break;
                };
                if out.alloc.is_none() {
                    out.alloc = reason;
                }
                directives = after;
            } else if let Some(args) = strip_reasoned(directives, "panicfree(") {
                let Some((reason, after)) = take_reason(args) else {
                    break;
                };
                if out.panicfree.is_none() {
                    out.panicfree = reason;
                }
                directives = after;
            } else {
                break;
            }
            directives = directives
                .strip_prefix(',')
                .unwrap_or(directives)
                .trim_start();
        }
    }
    out
}

/// `strip_prefix`, named for what the reasoned-waiver branches share.
fn strip_reasoned<'a>(directives: &'a str, head: &str) -> Option<&'a str> {
    directives.strip_prefix(head)
}

/// Consumes a parenthesised reason (already past the `(`): returns the
/// trimmed reason (`None` when empty — an empty reason waives nothing) and
/// the remainder after the closing paren. The reason may itself contain
/// balanced parentheses.
fn take_reason(args: &str) -> Option<(Option<String>, &str)> {
    let end = matching_paren(args)?;
    let text = args[..end].trim();
    let reason = if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    };
    Some((reason, args[end + 1..].trim_start()))
}

/// Byte index of the `)` closing an already-open paren, skipping balanced
/// inner pairs.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Pass 2: mark lines belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Tracks brace depth over the cleaned text; when a test attribute is seen,
/// the next brace-delimited item at the same depth is marked as test code.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut depth: usize = 0;
    let mut armed = false;
    let mut test_floor: Option<usize> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if test_floor.is_some() {
            line.in_test = true;
        }
        if test_floor.is_none() && (code.contains("#[cfg(test)]") || has_test_attr(&code)) {
            armed = true;
            line.in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if armed {
                        test_floor = Some(depth);
                        armed = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some(floor) = test_floor {
                        if depth <= floor {
                            test_floor = None;
                        }
                    }
                }
                ';' if armed && depth == 0 => {
                    // e.g. `#[cfg(test)] use helpers;` — no body to skip.
                    armed = false;
                }
                _ => {}
            }
        }
    }
}

/// Matches the `#[test]` attribute (not `#[testsomething]`).
fn has_test_attr(code: &str) -> bool {
    code.contains("#[test]") || code.contains("#[bench]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let c = codes("let x = 1; // note: unwrap() here is fine\n");
        assert_eq!(c[0], "let x = 1; ");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* outer /* inner */ still comment */ b\nc /* open\nclose */ d\n";
        let c = codes(src);
        assert_eq!(c[0], "a  b");
        assert_eq!(c[1], "c ");
        assert_eq!(c[2], " d");
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = codes("let s = \"call .unwrap() now\"; s.len();\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains(".len()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = codes("let s = \"a\\\"b.unwrap()\"; x()\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("x()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = codes("let s = r#\"panic!(\"no\")\"#; go()\n");
        assert!(!c[0].contains("panic"));
        assert!(c[0].contains("go()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert_eq!(c[0], "fn f<'a>(x: &'a str) -> &'a str { x }");
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = codes("let q = '\\''; let z = 'z'; done()\n");
        assert!(c[0].contains("done()"));
        assert!(!c[0].contains("'z'"), "char contents blanked: {}", c[0]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let lines = scan("/// docs\npub fn f() {}\n//! inner\n");
        assert!(lines[0].is_doc);
        assert!(!lines[1].is_doc);
        assert!(lines[2].is_doc);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_attr_function_is_marked() {
        let src = "#[test]\nfn check() {\n    y.unwrap();\n}\nfn lib() {}\n";
        let lines = scan(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn allow_directives_are_parsed() {
        let lines = scan("panic!(\"bad\"); // lint: allow(TL002, TL001)\n");
        assert!(lines[0].allows("TL002"));
        assert!(lines[0].allows("TL001"));
        assert!(!lines[0].allows("TL003"));
    }

    #[test]
    fn nondeterministic_directive_requires_a_reason() {
        let lines = scan(
            "a(); // lint: nondeterministic(wall-clock telemetry only)\nb(); // lint: nondeterministic()\nc();\n",
        );
        assert_eq!(
            lines[0].nondet_reason.as_deref(),
            Some("wall-clock telemetry only")
        );
        assert!(
            lines[1].nondet_reason.is_none(),
            "empty reason is no waiver"
        );
        assert!(lines[2].nondet_reason.is_none());
    }

    #[test]
    fn combined_allow_and_nondeterministic_directive() {
        let lines =
            scan("t(); // lint: allow(TL003), nondeterministic(timing (stage) telemetry)\n");
        assert!(lines[0].allows("TL003"));
        assert_eq!(
            lines[0].nondet_reason.as_deref(),
            Some("timing (stage) telemetry")
        );
    }

    #[test]
    fn standalone_nondeterministic_comment_covers_next_code_line() {
        let src = "// lint: nondeterministic(jitter is display-only)\nnow();\nlater();\n";
        let lines = scan(src);
        assert!(lines[1].nondet_reason.is_some());
        assert!(lines[2].nondet_reason.is_none());
    }

    #[test]
    fn unsafe_directive_requires_a_reason() {
        let lines = scan(
            "a(); // lint: unsafe(read within bounds checked above)\nb(); // lint: unsafe()\nc();\n",
        );
        assert_eq!(
            lines[0].unsafe_reason.as_deref(),
            Some("read within bounds checked above")
        );
        assert!(
            lines[1].unsafe_reason.is_none(),
            "empty reason is no waiver"
        );
        assert!(lines[2].unsafe_reason.is_none());
    }

    #[test]
    fn concurrency_directive_requires_a_reason() {
        let lines = scan(
            "a(); // lint: concurrency(claim counter; order never reaches results)\nb(); // lint: concurrency()\n",
        );
        assert_eq!(
            lines[0].conc_reason.as_deref(),
            Some("claim counter; order never reaches results")
        );
        assert!(lines[1].conc_reason.is_none(), "empty reason is no waiver");
    }

    #[test]
    fn standalone_unsafe_and_concurrency_comments_cover_next_code_line() {
        let src = "// lint: unsafe(audited)\nraw();\n// lint: concurrency(worker-local)\nshared();\nafter();\n";
        let lines = scan(src);
        assert_eq!(lines[1].unsafe_reason.as_deref(), Some("audited"));
        assert!(lines[1].conc_reason.is_none());
        assert_eq!(lines[3].conc_reason.as_deref(), Some("worker-local"));
        assert!(lines[4].unsafe_reason.is_none());
        assert!(lines[4].conc_reason.is_none());
    }

    #[test]
    fn combined_allow_and_concurrency_directive() {
        let lines =
            scan("t(); // lint: allow(TL012), concurrency(join supplies the (only) edge)\n");
        assert!(lines[0].allows("TL012"));
        assert_eq!(
            lines[0].conc_reason.as_deref(),
            Some("join supplies the (only) edge")
        );
    }

    #[test]
    fn alloc_and_panicfree_directives_require_a_reason() {
        let lines = scan(
            "a(); // lint: alloc(one-time ring growth, amortised)\nb(); // lint: alloc()\nc(); // lint: panicfree(index < len checked by the assert above)\nd(); // lint: panicfree()\n",
        );
        assert_eq!(
            lines[0].alloc_reason.as_deref(),
            Some("one-time ring growth, amortised")
        );
        assert!(lines[1].alloc_reason.is_none(), "empty reason is no waiver");
        assert_eq!(
            lines[2].panicfree_reason.as_deref(),
            Some("index < len checked by the assert above")
        );
        assert!(
            lines[3].panicfree_reason.is_none(),
            "empty reason is no waiver"
        );
    }

    #[test]
    fn standalone_alloc_and_panicfree_comments_cover_next_code_line() {
        let src = "// lint: alloc(cold branch)\ngrow();\n// lint: panicfree(bounds pinned)\nidx();\nafter();\n";
        let lines = scan(src);
        assert_eq!(lines[1].alloc_reason.as_deref(), Some("cold branch"));
        assert!(lines[1].panicfree_reason.is_none());
        assert_eq!(lines[3].panicfree_reason.as_deref(), Some("bounds pinned"));
        assert!(lines[4].alloc_reason.is_none());
        assert!(lines[4].panicfree_reason.is_none());
    }

    #[test]
    fn standalone_allow_comment_suppresses_next_code_line() {
        let src = "// lint: allow(TL002)\npanic!(\"bad\");\nafter();\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[1].allows("TL002"));
        assert!(
            !lines[2].allows("TL002"),
            "directive must not leak past one code line"
        );
    }
}
