//! `taglets-lint`: a dependency-free static-analysis pass for the TAGLETS
//! workspace.
//!
//! The engine scans every library source file (`crates/*/src/**/*.rs` plus
//! the root `src/`), strips comments and literal contents with a small
//! Rust-aware scanner, and applies the TL rule set:
//!
//! | rule  | checks |
//! |-------|--------|
//! | TL001 | `unwrap()` / `expect()` in non-test library code |
//! | TL002 | `panic!` / `todo!` / `unreachable!` / `unimplemented!` |
//! | TL003 | nondeterminism sources (`thread_rng`, `rand::random`, `Instant::now`, `SystemTime`) |
//! | TL004 | `==` / `!=` on float expressions (token-level) |
//! | TL005 | missing doc comment on `pub fn` in `tensor`/`core` (advisory) |
//! | TL006 | thread spawning outside `tensor::exec` |
//! | TL007 | nondeterminism reachable from a deterministic root (taint, with call chain) |
//! | TL008 | iteration over unordered `HashMap`/`HashSet` in library code |
//! | TL009 | RNG construction not derived from a seed |
//! | TL010 | `unsafe` code without a reasoned `lint: unsafe(reason)` waiver |
//! | TL011 | interior mutability reachable from an executor dispatch (with call chain) |
//! | TL012 | atomic memory ordering weaker than `SeqCst` |
//! | TL013 | float accumulation onto shared state in a worker closure |
//! | TL014 | heap allocation reachable from a latency-critical root (with call chain) |
//! | TL015 | blocking operation reachable from a latency-critical root (with call chain) |
//! | TL016 | panic-capable op on the serve path (with call chain) |
//!
//! TL001–TL006 come from the line scanner and token stream per file;
//! TL007–TL009 from the workspace-level determinism pipeline ([`lexer`] →
//! [`items`] → [`callgraph`] → [`taint`]); TL010–TL013 from the
//! concurrency-safety stage ([`concurrency`]) and TL014–TL016 from the
//! hot-path hygiene stage ([`hotpath`]), both over the same item facts and
//! call-graph. `--explain TLxxx` prints each rule's rationale and waiver
//! syntax.
//!
//! Pre-existing violations live in `lint-baseline.txt` as per-(rule, file)
//! counts; `--check` fails only on *new* violations and `--update-baseline`
//! locks in burn-down progress. Individual intentional sites can be
//! suppressed with a trailing `// lint: allow(TL002)` comment.
//!
//! The crate is deliberately std-only so the gate builds and runs with
//! `cargo run -p taglets-lint -- --check` even when the crate registry is
//! unreachable.

pub mod baseline;
pub mod callgraph;
pub mod concurrency;
pub mod hotpath;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod taint;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{Hop, Rule, Violation, ALL_RULES};

/// Name of the checked-in baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Directory components never scanned (generated, vendored, or test-only).
const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "tests", "benches", "examples"];

/// The analysis stages, in execution order, as reported by
/// [`scan_workspace_timed`]. The names are part of the `--json` contract.
pub const STAGES: [&str; 7] = [
    "scan",
    "rules",
    "items",
    "callgraph",
    "taint",
    "concurrency",
    "hotpath",
];

/// Wall-time spent in one analysis stage. Telemetry only: the values feed
/// the `--json` report so lint performance regressions are visible
/// PR-over-PR, never the analysis results.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// One of [`STAGES`].
    pub stage: &'static str,
    /// Elapsed wall-clock milliseconds.
    pub millis: u128,
    /// Elapsed wall-clock nanoseconds. The whole pipeline runs in a few
    /// milliseconds, so `BENCH_lint.json` records at this resolution;
    /// `millis` stays for the `--json` summary contract.
    pub nanos: u128,
}

/// Scans the workspace rooted at `root` and returns all violations, sorted
/// by (file, line, rule).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    scan_workspace_timed(root).map(|(v, _)| v)
}

/// [`scan_workspace`] plus per-stage wall-times, in [`STAGES`] order.
pub fn scan_workspace_timed(root: &Path) -> io::Result<(Vec<Violation>, Vec<StageTiming>)> {
    let mut timings = Vec::new();

    // Stage "scan": file discovery, comment stripping, lexing.
    let t = stage_clock();
    let files = workspace_file_paths(root)?;
    let mut parsed = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        let rel = relative_path(root, file);
        let lines = scanner::scan(&source);
        let tokens = lexer::lex(&source);
        parsed.push((rel, lines, tokens));
    }
    push_timing(&mut timings, "scan", t);

    // Stage "rules": per-file line- and token-level rules.
    let t = stage_clock();
    let mut violations = Vec::new();
    for (rel, lines, tokens) in &parsed {
        violations.extend(rules::check_file(rel, lines, tokens));
    }
    push_timing(&mut timings, "rules", t);

    // Stage "items": per-function determinism and concurrency facts.
    let t = stage_clock();
    let mut fns = Vec::new();
    let mut file_cfacts = Vec::new();
    for (rel, lines, tokens) in &parsed {
        let extraction = items::extract(rel, tokens, lines);
        fns.extend(extraction.fns);
        file_cfacts.extend(extraction.file_cfacts.into_iter().map(|f| (rel.clone(), f)));
    }
    push_timing(&mut timings, "items", t);

    // Stage "callgraph": name-based over-approximate call resolution.
    let t = stage_clock();
    let graph = callgraph::build(fns);
    push_timing(&mut timings, "callgraph", t);

    // Stage "taint": determinism dataflow (TL007–TL009).
    let t = stage_clock();
    violations.extend(taint::analyze(&graph));
    push_timing(&mut timings, "taint", t);

    // Stage "concurrency": shared-state dataflow (TL010–TL013).
    let t = stage_clock();
    violations.extend(concurrency::analyze(&graph, &file_cfacts));
    for (rel, lines, tokens) in &parsed {
        violations.extend(concurrency::check_closures(rel, tokens, lines));
    }
    push_timing(&mut timings, "concurrency", t);

    // Stage "hotpath": allocation/blocking/panic reachability from
    // latency-critical roots (TL014–TL016).
    let t = stage_clock();
    violations.extend(hotpath::analyze(&graph));
    push_timing(&mut timings, "hotpath", t);

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((violations, timings))
}

/// Workspace-relative paths of every file the scan covers, sorted. Public
/// so integration tests can assert scan coverage without re-implementing
/// the walk.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    Ok(workspace_file_paths(root)?
        .iter()
        .map(|f| relative_path(root, f))
        .collect())
}

/// Absolute paths of every scannable source file under `root`, sorted.
fn workspace_file_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rust_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rust_files(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Starts a stage clock. Isolated here so the telemetry waiver covers the
/// single wall-clock read in the crate.
fn stage_clock() -> std::time::Instant {
    // lint: allow(TL003), nondeterministic(lint stage telemetry; the value never feeds analysis results)
    std::time::Instant::now()
}

fn push_timing(timings: &mut Vec<StageTiming>, stage: &'static str, start: std::time::Instant) {
    let elapsed = start.elapsed();
    timings.push(StageTiming {
        stage,
        millis: elapsed.as_millis(),
        nanos: elapsed.as_nanos(),
    });
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rust_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (stable across platforms).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from `start` looking for the
/// baseline file or a `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join(BASELINE_FILE).is_file() {
            return Some(d);
        }
        if let Ok(manifest) = fs::read_to_string(d.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Regenerates `lint-baseline.txt` at `root` from the current tree and
/// returns `(total violations, rule/file entries)`. Backs both the
/// `--update-baseline` flag and the `UPDATE_BASELINE=1` environment mode
/// (the `UPDATE_GOLDEN=1` idiom), so the baseline is never hand-edited.
pub fn update_baseline(root: &Path) -> Result<(usize, usize), String> {
    let violations =
        scan_workspace(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let counts = baseline::count(&violations);
    let path = root.join(BASELINE_FILE);
    fs::write(&path, baseline::render(&counts))
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok((violations.len(), counts.len()))
}

/// Loads the baseline at `root`, treating a missing file as empty.
pub fn load_baseline(root: &Path) -> Result<baseline::Counts, String> {
    let path = root.join(BASELINE_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(baseline::Counts::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}
