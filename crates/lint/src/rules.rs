//! The TL rule set.
//!
//! Each rule is a line-level matcher over the cleaned source produced by
//! [`crate::scanner`]. Rules are scoped: TL001/TL002 apply to all library
//! code, TL003 skips the bench crate (timing is its purpose), and TL005 is
//! an advisory documentation rule limited to the `tensor` and `core` crates.

use crate::scanner::SourceLine;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap()` / `expect()` in non-test library code.
    Tl001,
    /// `panic!` / `todo!` / `unreachable!` / `unimplemented!` in library code.
    Tl002,
    /// Nondeterminism sources in training/module code.
    Tl003,
    /// `==` / `!=` on float expressions.
    Tl004,
    /// Missing doc comment on `pub fn` in `tensor`/`core` (advisory).
    Tl005,
    /// Thread spawning outside the execution engine (`core/src/exec.rs`).
    Tl006,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Tl001,
    Rule::Tl002,
    Rule::Tl003,
    Rule::Tl004,
    Rule::Tl005,
    Rule::Tl006,
];

impl Rule {
    /// Stable code used in reports, baselines, and allow directives.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Tl001 => "TL001",
            Rule::Tl002 => "TL002",
            Rule::Tl003 => "TL003",
            Rule::Tl004 => "TL004",
            Rule::Tl005 => "TL005",
            Rule::Tl006 => "TL006",
        }
    }

    /// One-line description shown in reports.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Tl001 => "unwrap()/expect() in non-test library code",
            Rule::Tl002 => "panic!/todo!/unreachable!/unimplemented! in library code",
            Rule::Tl003 => "nondeterminism source (thread_rng/random/Instant/SystemTime)",
            Rule::Tl004 => "==/!= comparison on float expressions",
            Rule::Tl005 => "missing doc comment on pub fn (advisory)",
            Rule::Tl006 => "thread::spawn/scope outside the exec module",
        }
    }

    /// Advisory rules are reported but never fail `--check`.
    pub fn is_advisory(self) -> bool {
        matches!(self, Rule::Tl005)
    }

    /// Parses a rule code like `TL001`.
    pub fn from_code(code: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.code() == code)
    }

    /// Whether this rule applies to the file at workspace-relative `path`.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Binary targets may fail loudly at the top level; the panic
            // rules police *library* code.
            Rule::Tl001 | Rule::Tl002 => !is_binary_target(path),
            // Benchmarks time things and seed from entropy by design.
            Rule::Tl003 => !path.starts_with("crates/bench/"),
            Rule::Tl004 => true,
            Rule::Tl005 => {
                path.starts_with("crates/tensor/src/") || path.starts_with("crates/core/src/")
            }
            // All thread spawning lives in the execution engine so that
            // determinism has exactly one place to be argued; benches may
            // probe parallelism freely.
            Rule::Tl006 => path != "crates/core/src/exec.rs" && !path.starts_with("crates/bench/"),
        }
    }
}

/// True for executable entry points (`src/bin/*`, `src/main.rs`), where a
/// top-level `expect` on user input is idiomatic.
fn is_binary_target(path: &str) -> bool {
    path.contains("/bin/") || path == "src/main.rs" || path.ends_with("/src/main.rs")
}

/// A single rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source excerpt for the report.
    pub excerpt: String,
}

/// Runs every applicable rule over one scanned file.
pub fn check_file(path: &str, lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule in ALL_RULES {
            if !rule.applies_to(path) || line.allows(rule.code()) {
                continue;
            }
            let hit = match rule {
                Rule::Tl001 => hits_tl001(&line.code),
                Rule::Tl002 => hits_tl002(&line.code),
                Rule::Tl003 => hits_tl003(&line.code),
                Rule::Tl004 => hits_tl004(&line.code),
                Rule::Tl005 => hits_tl005(lines, idx),
                Rule::Tl006 => hits_tl006(&line.code),
            };
            if hit {
                out.push(Violation {
                    rule,
                    file: path.to_string(),
                    line: line.number,
                    excerpt: excerpt(&line.raw),
                });
            }
        }
    }
    out
}

fn excerpt(raw: &str) -> String {
    let trimmed = raw.trim();
    if trimmed.chars().count() > 90 {
        let head: String = trimmed.chars().take(87).collect();
        format!("{head}...")
    } else {
        trimmed.to_string()
    }
}

/// `.unwrap()` or `.expect(` — but not `.unwrap_or*` / `.expect_err`.
fn hits_tl001(code: &str) -> bool {
    contains_method_call(code, "unwrap", true) || contains_method_call(code, "expect", false)
}

/// Finds `.name(` (or `.name()` when `empty_args`), requiring the full
/// method name so `.unwrap_or()` and `.expect_err()` do not match.
fn contains_method_call(code: &str, name: &str, empty_args: bool) -> bool {
    let needle = format!(".{name}(");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&needle) {
        let at = start + pos;
        let after = at + needle.len();
        if empty_args {
            if code[after..].starts_with(')') {
                return true;
            }
        } else {
            return true;
        }
        start = after;
    }
    false
}

/// Panic-family macro invocations at a word boundary.
fn hits_tl002(code: &str) -> bool {
    ["panic!", "todo!", "unreachable!", "unimplemented!"]
        .iter()
        .any(|m| contains_word(code, m))
}

/// Nondeterminism sources.
fn hits_tl003(code: &str) -> bool {
    [
        "thread_rng",
        "rand::random",
        "Instant::now",
        "SystemTime::",
        "from_entropy",
    ]
    .iter()
    .any(|m| contains_word(code, m))
}

/// Substring match where the preceding character is not part of an
/// identifier (so `debug_assert!` does not hit `assert!`-style needles).
fn contains_word(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        if boundary {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// `==` / `!=` where either operand looks like a float expression.
fn hits_tl004(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        let is_eq = two == "==";
        let is_ne = two == "!=";
        if is_eq || is_ne {
            let prev = if i > 0 { bytes[i - 1] } else { b' ' };
            let next = if i + 2 < bytes.len() {
                bytes[i + 2]
            } else {
                b' '
            };
            // Skip `<=`, `>=`, `=>`-adjacent, `===`-style runs, and `!=`'s
            // `=` being part of `!==` (not Rust, but cheap to exclude).
            let operator = !matches!(prev, b'<' | b'>' | b'=' | b'!') && next != b'=';
            let operator = operator && (is_ne || prev != b'=');
            if operator {
                let left = operand_before(code, i);
                let right = operand_after(code, i + 2);
                if looks_float(left) || looks_float(right) {
                    return true;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

fn operand_before(code: &str, end: usize) -> &str {
    let boundary = code[..end]
        .rfind(|c: char| matches!(c, '(' | '{' | '[' | ',' | ';' | '&' | '|'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &code[boundary..end]
}

fn operand_after(code: &str, start: usize) -> &str {
    let rest = &code[start..];
    // `{` bounds the operand too: in `if d == Domain::X { 1.9 } else ...`
    // the literal belongs to the branch body, not the comparison.
    let boundary = rest
        .find(|c: char| matches!(c, ')' | '{' | '}' | ']' | ',' | ';' | '&' | '|'))
        .unwrap_or(rest.len());
    &rest[..boundary]
}

/// Float-ness heuristic: a `1.5`-style literal or an `f32`/`f64` token.
fn looks_float(operand: &str) -> bool {
    if contains_word(operand, "f32") || contains_word(operand, "f64") {
        return true;
    }
    let chars: Vec<char> = operand.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// Thread spawning primitives. Matched as words so e.g. a local identifier
/// `scoped_spawn` does not hit; `scope.spawn(...)`/`s.spawn(...)` inside an
/// existing `thread::scope` block are only reachable via the scope handle,
/// which itself requires a flagged `thread::scope` call to obtain.
fn hits_tl006(code: &str) -> bool {
    ["thread::spawn", "thread::scope", "thread::Builder"]
        .iter()
        .any(|m| contains_word(code, m))
}

/// `pub fn` without a doc comment in the contiguous attribute/doc block
/// directly above it.
fn hits_tl005(lines: &[SourceLine], idx: usize) -> bool {
    let trimmed = lines[idx].code.trim_start();
    let is_pub_fn = [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub async fn ",
    ]
    .iter()
    .any(|p| trimmed.starts_with(p));
    if !is_pub_fn {
        return false;
    }
    // Walk upwards over attributes and doc lines.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        if line.is_doc {
            return false;
        }
        let t = line.code.trim();
        let is_attr = t.starts_with("#[") || t.ends_with("]") && t.contains("#[");
        if is_attr || (t.is_empty() && !line.raw.trim().is_empty()) {
            // attribute (possibly multi-line) or a pure-comment line
            continue;
        }
        return true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn violations(path: &str, src: &str) -> Vec<(Rule, usize)> {
        check_file(path, &scan(src))
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn tl001_flags_unwrap_and_expect_only() {
        let src = "fn f() {\n    a.unwrap();\n    b.expect(\"msg\");\n    c.unwrap_or(0);\n    d.unwrap_or_else(|| 0);\n    e.expect_err(\"msg\");\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v, vec![(Rule::Tl001, 2), (Rule::Tl001, 3)]);
    }

    #[test]
    fn tl001_skips_test_code_and_comments() {
        let src = "// a.unwrap() in a comment\n#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl002_flags_panic_family() {
        let src = "fn f() {\n    panic!(\"boom\");\n    todo!();\n    unreachable!();\n    unimplemented!();\n    debug_assert!(true);\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|(r, _)| *r == Rule::Tl002));
    }

    #[test]
    fn tl003_flags_nondeterminism_outside_bench() {
        let src = "fn f() {\n    let r = thread_rng();\n    let t = Instant::now();\n}\n";
        assert_eq!(violations("crates/nn/src/lib.rs", src).len(), 2);
        assert!(violations("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_flags_float_comparisons() {
        let src =
            "fn f() {\n    if x == 0.0 {}\n    if y as f32 != z {}\n    if n == 0 {}\n    if v[0] == w[1] {}\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v, vec![(Rule::Tl004, 2), (Rule::Tl004, 3)]);
    }

    #[test]
    fn tl004_ignores_pattern_arrows_and_orderings() {
        let src =
            "fn f() {\n    if a <= 1.0 {}\n    if b >= 2.0 {}\n    match c { _ => 3.0 };\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl005_only_in_tensor_and_core() {
        let src = "pub fn undocumented() {}\n";
        assert_eq!(
            violations("crates/tensor/src/lib.rs", src),
            vec![(Rule::Tl005, 1)]
        );
        assert_eq!(
            violations("crates/core/src/lib.rs", src),
            vec![(Rule::Tl005, 1)]
        );
        assert!(violations("crates/nn/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl005_accepts_docs_above_attributes() {
        let src = "/// Documented.\n#[must_use]\npub fn documented() {}\n";
        assert!(violations("crates/tensor/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl006_flags_thread_spawning_outside_exec() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n    thread::Builder::new();\n}\n";
        let v = violations("crates/nn/src/lib.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(r, _)| *r == Rule::Tl006));
        assert!(violations("crates/core/src/exec.rs", src).is_empty());
        assert!(violations("crates/bench/benches/exec_speedup.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() {\n    panic!(\"guard\"); // lint: allow(TL002)\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }
}
