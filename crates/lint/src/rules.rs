//! The TL rule set.
//!
//! TL001–TL003, TL005 and TL006 are line-level matchers over the cleaned
//! source produced by [`crate::scanner`]. TL004 matches over the token
//! stream from [`crate::lexer`] (so tuple indices and string contents can
//! never look like float literals). TL007–TL009 are produced by the
//! determinism passes ([`crate::items`] → [`crate::callgraph`] →
//! [`crate::taint`]), TL010–TL013 by the concurrency-safety pass
//! ([`crate::concurrency`] over the same item facts and call-graph), and
//! TL014–TL016 by the hot-path hygiene pass ([`crate::hotpath`], a
//! reachability walk from latency-critical roots); all three only share the
//! [`Violation`] type and scoping logic here. Rules are scoped: TL001/TL002
//! apply to all library code, TL003 and the
//! determinism/concurrency/hot-path rules skip the bench crate (timing is
//! its purpose), and TL005 is an advisory documentation rule limited to the
//! `tensor` and `core` crates.

use crate::lexer::{Tok, Token};
use crate::scanner::SourceLine;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap()` / `expect()` in non-test library code.
    Tl001,
    /// `panic!` / `todo!` / `unreachable!` / `unimplemented!` in library code.
    Tl002,
    /// Nondeterminism sources in training/module code.
    Tl003,
    /// `==` / `!=` on float expressions.
    Tl004,
    /// Missing doc comment on `pub fn` in `tensor`/`core` (advisory).
    Tl005,
    /// Thread spawning outside the execution engine (`tensor/src/exec.rs`).
    Tl006,
    /// Nondeterminism source reachable from a declared deterministic root
    /// (taint analysis over the workspace call-graph).
    Tl007,
    /// Iteration over an unordered `HashMap`/`HashSet` in library code.
    Tl008,
    /// RNG construction not derived from a seed.
    Tl009,
    /// `unsafe` code without a reasoned `lint: unsafe(reason)` waiver.
    Tl010,
    /// Interior-mutability type reachable from an executor dispatch point
    /// (concurrency dataflow over the workspace call-graph).
    Tl011,
    /// Atomic memory ordering weaker than `SeqCst`.
    Tl012,
    /// Floating-point compound accumulation onto shared state inside a
    /// dispatched worker closure (non-associative reduction smell).
    Tl013,
    /// Heap allocation reachable from a latency-critical root without a
    /// reasoned `lint: alloc(reason)` waiver (hot-path reachability walk).
    Tl014,
    /// Blocking operation (lock, channel recv, filesystem/io, sleep)
    /// reachable from a latency-critical root.
    Tl015,
    /// Panic-capable op (slice indexing, `copy_from_slice`, integer
    /// division) on the serve path without a `lint: panicfree(reason)`
    /// waiver.
    Tl016,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 16] = [
    Rule::Tl001,
    Rule::Tl002,
    Rule::Tl003,
    Rule::Tl004,
    Rule::Tl005,
    Rule::Tl006,
    Rule::Tl007,
    Rule::Tl008,
    Rule::Tl009,
    Rule::Tl010,
    Rule::Tl011,
    Rule::Tl012,
    Rule::Tl013,
    Rule::Tl014,
    Rule::Tl015,
    Rule::Tl016,
];

impl Rule {
    /// Stable code used in reports, baselines, and allow directives.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Tl001 => "TL001",
            Rule::Tl002 => "TL002",
            Rule::Tl003 => "TL003",
            Rule::Tl004 => "TL004",
            Rule::Tl005 => "TL005",
            Rule::Tl006 => "TL006",
            Rule::Tl007 => "TL007",
            Rule::Tl008 => "TL008",
            Rule::Tl009 => "TL009",
            Rule::Tl010 => "TL010",
            Rule::Tl011 => "TL011",
            Rule::Tl012 => "TL012",
            Rule::Tl013 => "TL013",
            Rule::Tl014 => "TL014",
            Rule::Tl015 => "TL015",
            Rule::Tl016 => "TL016",
        }
    }

    /// One-line description shown in reports.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Tl001 => "unwrap()/expect() in non-test library code",
            Rule::Tl002 => "panic!/todo!/unreachable!/unimplemented! in library code",
            Rule::Tl003 => "nondeterminism source (thread_rng/random/Instant/SystemTime)",
            Rule::Tl004 => "==/!= comparison on float expressions",
            Rule::Tl005 => "missing doc comment on pub fn (advisory)",
            Rule::Tl006 => "thread::spawn/scope outside the exec module",
            Rule::Tl007 => "nondeterminism reachable from a deterministic root",
            Rule::Tl008 => "iteration over unordered HashMap/HashSet in library code",
            Rule::Tl009 => "RNG construction not derived from a seed",
            Rule::Tl010 => "unsafe code without a reasoned lint: unsafe(reason) waiver",
            Rule::Tl011 => "interior-mutability type reachable from an executor dispatch",
            Rule::Tl012 => "atomic memory ordering weaker than SeqCst",
            Rule::Tl013 => "float accumulation onto shared state in a worker closure",
            Rule::Tl014 => "heap allocation reachable from a latency-critical root",
            Rule::Tl015 => "blocking operation reachable from a latency-critical root",
            Rule::Tl016 => "panic-capable op on the serve path",
        }
    }

    /// One-paragraph rationale shown by `--explain`.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Tl001 => {
                "unwrap()/expect() turn recoverable conditions into process aborts. \
                 Library code in this workspace returns Result so callers (the CLI, \
                 the serving engine, tests) decide how failures surface; a panic \
                 deep inside training or inference kills the whole run and hides \
                 the error from the experiment log."
            }
            Rule::Tl002 => {
                "panic!/todo!/unreachable!/unimplemented! are aborts by another \
                 name. A reproduction run that dies mid-sweep loses every cell \
                 computed so far, so library code must express impossibility \
                 through types or return errors instead of asserting it."
            }
            Rule::Tl003 => {
                "thread_rng/random/Instant/SystemTime inject ambient state into \
                 results. The paper's claims are only checkable if the same seed \
                 produces the same bytes, so every random or time-like value must \
                 flow from an explicit seed or a virtual clock."
            }
            Rule::Tl004 => {
                "== / != on floats encode an exactness floats do not have. After \
                 any reassociation or platform difference the comparison flips, so \
                 thresholds and approx-comparisons must be explicit."
            }
            Rule::Tl005 => {
                "Public tensor/core functions are this reproduction's API surface; \
                 an undocumented pub fn forces the next reader back into the paper. \
                 Advisory: reported, never fails --check."
            }
            Rule::Tl006 => {
                "All thread spawning is hoisted into tensor::exec so determinism \
                 has exactly one place to be argued (claim order, reassembly, \
                 error selection). A stray thread::spawn elsewhere would create a \
                 second, unaudited concurrency story."
            }
            Rule::Tl007 => {
                "Taint analysis over the workspace call-graph: a function declared \
                 deterministic (seeded training, eval, serving) transitively calls \
                 a nondeterminism source. The chain in the diagnostic lists every \
                 hop so the offending call can be cut or seeded."
            }
            Rule::Tl008 => {
                "HashMap/HashSet iteration order depends on hasher state, so any \
                 loop over one feeds arbitrary order into results. Library code \
                 iterates BTreeMap/BTreeSet or sorts first."
            }
            Rule::Tl009 => {
                "An RNG built from entropy (or an unseeded constructor) cannot be \
                 replayed. Every generator must derive from the experiment seed so \
                 the whole pipeline is one function of (data, config, seed)."
            }
            Rule::Tl010 => {
                "unsafe code suspends the compiler's aliasing and lifetime proofs, \
                 which is exactly what the parallel executor's buffer-splitting \
                 relies on. Each unsafe site must state its safety argument inline \
                 via `// lint: unsafe(reason)` so the audit lives next to the code \
                 and shows up in review diffs."
            }
            Rule::Tl011 => {
                "Concurrency dataflow over the call-graph: an interior-mutability \
                 type (Mutex, RwLock, RefCell, Cell, UnsafeCell, atomics, static \
                 mut) is reachable from an Executor::map/run/for_each or \
                 scope.spawn dispatch point, meaning worker closures can share \
                 mutable state. Lock contention or racy updates there break the \
                 bitwise-identical-at-1/2/4-workers invariant; the diagnostic's \
                 chain shows the dispatch-to-state path."
            }
            Rule::Tl012 => {
                "Orderings weaker than SeqCst (Relaxed, Acquire, Release, AcqRel) \
                 trade reordering freedom for proofs the lint cannot check. The \
                 executor core carries reasoned waivers for its claim counter; \
                 anywhere else the default must be SeqCst until a waiver argues \
                 otherwise."
            }
            Rule::Tl013 => {
                "A compound float accumulation (`acc += x`) onto state declared \
                 outside a dispatched worker closure reorders a non-associative \
                 reduction across workers. Sums must be computed per-worker and \
                 reassembled in index order, as the executor's map/run contract \
                 does."
            }
            Rule::Tl014 => {
                "Hot-path reachability walk over the call-graph: a heap \
                 allocation (Vec::new/with_capacity, vec![], to_vec, collect, \
                 clone, Box::new, String::from, format!) is transitively \
                 reachable from a latency-critical root — the serving engine's \
                 submit/flush/run path, the batched inference fast path, the \
                 *_into kernels, or the sharded retrofit sweep. Steady-state \
                 serving must reuse scratch (InferScratch, GradScratch, \
                 PackedWeights); setup code (new/with_*/load constructors and \
                 one-time *Scratch/Packed* builders) is exempt by a \
                 root-relative cut, so every surviving site needs `// lint: \
                 alloc(reason)` stating why the allocation is acceptable."
            }
            Rule::Tl015 => {
                "A blocking operation (Mutex/RwLock lock, channel recv, \
                 std::fs/std::io call, thread::sleep) is reachable from a \
                 latency-critical root. One blocked worker stalls the whole \
                 micro-batch, so the serve and kernel paths are lock-free by \
                 construction: state is owned by the engine thread and workers \
                 get disjoint output blocks. There is no reasoned waiver — cut \
                 the call out of the hot path, or `lint: allow(TL015)` with \
                 review."
            }
            Rule::Tl016 => {
                "A panic-capable op (slice/array indexing, copy_from_slice, \
                 integer division by a non-literal divisor) sits on the serve \
                 path. A panic inside a worker closure poisons the executor \
                 and kills every in-flight request, so hot code must argue its \
                 bounds: each surviving site carries `// lint: \
                 panicfree(reason)` stating why the index/divisor is in range \
                 (dimensions validated at load, block sizes clamped, divisor \
                 checked nonzero upstream)."
            }
        }
    }

    /// The inline waiver syntax that suppresses this rule, shown by
    /// `--explain`.
    pub fn waiver(self) -> &'static str {
        match self {
            Rule::Tl003 | Rule::Tl007 | Rule::Tl009 => {
                "// lint: allow(TLxxx), nondeterministic(reason) — the reason is \
                 required and documents why the value never feeds results"
            }
            Rule::Tl010 => {
                "// lint: unsafe(reason) — the reason is required and must state \
                 the safety argument (aliasing, lifetime, initialization)"
            }
            Rule::Tl011 | Rule::Tl012 | Rule::Tl013 => {
                "// lint: concurrency(reason) — the reason is required and must \
                 state why the shared state cannot perturb results"
            }
            Rule::Tl014 => {
                "// lint: alloc(reason) — the reason is required and must state \
                 why this allocation is acceptable on the hot path (one-time, \
                 amortized, or bounded)"
            }
            Rule::Tl016 => {
                "// lint: panicfree(reason) — the reason is required and must \
                 state the bounds argument (why the index is in range or the \
                 divisor nonzero)"
            }
            _ => "// lint: allow(TLxxx) on the offending line, or standalone on the line above",
        }
    }

    /// Advisory rules are reported but never fail `--check`.
    pub fn is_advisory(self) -> bool {
        matches!(self, Rule::Tl005)
    }

    /// Parses a rule code like `TL001`.
    pub fn from_code(code: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.code() == code)
    }

    /// Whether this rule applies to the file at workspace-relative `path`.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Binary targets may fail loudly at the top level; the panic
            // rules police *library* code.
            Rule::Tl001 | Rule::Tl002 => !is_binary_target(path),
            // Benchmarks time things and seed from entropy by design.
            Rule::Tl003 => !path.starts_with("crates/bench/"),
            Rule::Tl004 => true,
            Rule::Tl005 => {
                path.starts_with("crates/tensor/src/") || path.starts_with("crates/core/src/")
            }
            // All thread spawning lives in the execution engine (hoisted to
            // the tensor crate so blocked kernels can use it) so that
            // determinism has exactly one place to be argued; benches may
            // probe parallelism freely.
            Rule::Tl006 => {
                path != "crates/tensor/src/exec.rs" && !path.starts_with("crates/bench/")
            }
            // Determinism rules: benches time and sample by design; TL008
            // additionally tolerates binaries (a CLI summarising a HashMap
            // does not perturb seeded results).
            Rule::Tl007 | Rule::Tl009 => !path.starts_with("crates/bench/"),
            Rule::Tl008 => !path.starts_with("crates/bench/") && !is_binary_target(path),
            // Concurrency-safety rules apply everywhere except benches; the
            // executor core is *not* exempted — its sites carry reasoned
            // waivers instead, so the safety argument is written down.
            Rule::Tl010 | Rule::Tl011 | Rule::Tl012 | Rule::Tl013 => {
                !path.starts_with("crates/bench/")
            }
            // Hot-path hygiene rules skip benches (they allocate and time
            // by design) and the lint crate itself (tooling with no
            // latency-critical roots — only over-approximate name fan-out
            // can reach it). Product crates get no path exemption: setup
            // code is cut root-relatively in the walk instead.
            Rule::Tl014 | Rule::Tl015 | Rule::Tl016 => {
                !path.starts_with("crates/bench/") && !path.starts_with("crates/lint/")
            }
        }
    }
}

/// True for executable entry points (`src/bin/*`, `src/main.rs`), where a
/// top-level `expect` on user input is idiomatic.
fn is_binary_target(path: &str) -> bool {
    path.contains("/bin/") || path == "src/main.rs" || path.ends_with("/src/main.rs")
}

/// One function-level step in a taint chain, from a deterministic root
/// toward the nondeterminism source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Qualified function name (`TagletsSystem::run`).
    pub name: String,
    /// Workspace-relative file declaring the function.
    pub file: String,
    /// 1-based line of the `fn`.
    pub line: usize,
}

/// A single rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source excerpt for the report.
    pub excerpt: String,
    /// For TL007: the call chain from the deterministic root down to the
    /// function containing the source. For TL011: the chain from the
    /// dispatching function down to the shared state. For TL014–TL016: the
    /// chain from the latency-critical root down to the allocating,
    /// blocking, or panic-capable site. Empty otherwise.
    pub chain: Vec<Hop>,
}

/// Runs every applicable line-level rule plus the token-level TL004 pass
/// over one file. The determinism rules (TL007–TL009) need the whole
/// workspace and are produced by [`crate::taint`] instead.
pub fn check_file(path: &str, lines: &[SourceLine], tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule in ALL_RULES {
            if !rule.applies_to(path) || line.allows(rule.code()) {
                continue;
            }
            let hit = match rule {
                Rule::Tl001 => hits_tl001(&line.code),
                Rule::Tl002 => hits_tl002(&line.code),
                Rule::Tl003 => hits_tl003(&line.code),
                Rule::Tl005 => hits_tl005(lines, idx),
                Rule::Tl006 => hits_tl006(&line.code),
                Rule::Tl004
                | Rule::Tl007
                | Rule::Tl008
                | Rule::Tl009
                | Rule::Tl010
                | Rule::Tl011
                | Rule::Tl012
                | Rule::Tl013
                | Rule::Tl014
                | Rule::Tl015
                | Rule::Tl016 => false,
            };
            if hit {
                out.push(Violation {
                    rule,
                    file: path.to_string(),
                    line: line.number,
                    excerpt: excerpt(&line.raw),
                    chain: Vec::new(),
                });
            }
        }
    }
    if Rule::Tl004.applies_to(path) {
        out.extend(check_tl004(path, lines, tokens));
    }
    out
}

/// Token-level TL004: `==` / `!=` with a float-typed operand nearby.
///
/// Works over real tokens, so the old line heuristic's false positives are
/// structurally impossible: tuple indices (`x.0.1`) lex as integers, string
/// and char literal contents are single tokens, and `1..2` is a range, not
/// a float. An operand window extends from the comparison until a token
/// that must end the expression.
fn check_tl004(path: &str, lines: &[SourceLine], tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.is_punct("==") || tok.is_punct("!=")) {
            continue;
        }
        let meta = lines.get(tok.line.saturating_sub(1));
        if meta
            .map(|l| l.in_test || l.allows("TL004"))
            .unwrap_or(false)
        {
            continue;
        }
        let left = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| !ends_left_operand(t))
            .take(12);
        let right = tokens[i + 1..]
            .iter()
            .take_while(|t| !ends_right_operand(t))
            .take(12);
        if left.chain(right).any(floatish) {
            out.push(Violation {
                rule: Rule::Tl004,
                file: path.to_string(),
                line: tok.line,
                excerpt: meta.map(|l| excerpt(&l.raw)).unwrap_or_default(),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Tokens that cannot belong to either comparison operand.
fn ends_any_operand(t: &Token) -> bool {
    matches!(
        t.kind,
        Tok::Punct(";" | "," | "&&" | "||" | "=" | "=>" | "==" | "!=")
    )
}

/// Walking left, an opening delimiter means the comparison's expression
/// started after it (`f(a == b)` must not see `f`'s siblings).
fn ends_left_operand(t: &Token) -> bool {
    ends_any_operand(t) || matches!(t.kind, Tok::Open(_) | Tok::Close('}'))
}

/// Walking right, a closing delimiter (or block open) ends the expression.
fn ends_right_operand(t: &Token) -> bool {
    ends_any_operand(t) || matches!(t.kind, Tok::Close(_) | Tok::Open('{'))
}

/// A token that makes the operand float-typed.
fn floatish(t: &Token) -> bool {
    matches!(t.kind, Tok::Float) || matches!(t.ident(), Some("f32" | "f64"))
}

fn excerpt(raw: &str) -> String {
    let trimmed = raw.trim();
    if trimmed.chars().count() > 90 {
        let head: String = trimmed.chars().take(87).collect();
        format!("{head}...")
    } else {
        trimmed.to_string()
    }
}

/// `.unwrap()` or `.expect(` — but not `.unwrap_or*` / `.expect_err`.
fn hits_tl001(code: &str) -> bool {
    contains_method_call(code, "unwrap", true) || contains_method_call(code, "expect", false)
}

/// Finds `.name(` (or `.name()` when `empty_args`), requiring the full
/// method name so `.unwrap_or()` and `.expect_err()` do not match.
fn contains_method_call(code: &str, name: &str, empty_args: bool) -> bool {
    let needle = format!(".{name}(");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&needle) {
        let at = start + pos;
        let after = at + needle.len();
        if empty_args {
            if code[after..].starts_with(')') {
                return true;
            }
        } else {
            return true;
        }
        start = after;
    }
    false
}

/// Panic-family macro invocations at a word boundary.
fn hits_tl002(code: &str) -> bool {
    ["panic!", "todo!", "unreachable!", "unimplemented!"]
        .iter()
        .any(|m| contains_word(code, m))
}

/// Nondeterminism sources.
fn hits_tl003(code: &str) -> bool {
    [
        "thread_rng",
        "rand::random",
        "Instant::now",
        "SystemTime::",
        "from_entropy",
    ]
    .iter()
    .any(|m| contains_word(code, m))
}

/// Substring match where the preceding character is not part of an
/// identifier (so `debug_assert!` does not hit `assert!`-style needles).
fn contains_word(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        if boundary {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Thread spawning primitives. Matched as words so e.g. a local identifier
/// `scoped_spawn` does not hit; `scope.spawn(...)`/`s.spawn(...)` inside an
/// existing `thread::scope` block are only reachable via the scope handle,
/// which itself requires a flagged `thread::scope` call to obtain.
fn hits_tl006(code: &str) -> bool {
    ["thread::spawn", "thread::scope", "thread::Builder"]
        .iter()
        .any(|m| contains_word(code, m))
}

/// `pub fn` without a doc comment in the contiguous attribute/doc block
/// directly above it.
fn hits_tl005(lines: &[SourceLine], idx: usize) -> bool {
    let trimmed = lines[idx].code.trim_start();
    let is_pub_fn = [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub async fn ",
    ]
    .iter()
    .any(|p| trimmed.starts_with(p));
    if !is_pub_fn {
        return false;
    }
    // Walk upwards over attributes and doc lines.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        if line.is_doc {
            return false;
        }
        let t = line.code.trim();
        let is_attr = t.starts_with("#[") || t.ends_with("]") && t.contains("#[");
        if is_attr || (t.is_empty() && !line.raw.trim().is_empty()) {
            // attribute (possibly multi-line) or a pure-comment line
            continue;
        }
        return true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn violations(path: &str, src: &str) -> Vec<(Rule, usize)> {
        let mut v: Vec<(Rule, usize)> = check_file(path, &scan(src), &lex(src))
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn tl001_flags_unwrap_and_expect_only() {
        let src = "fn f() {\n    a.unwrap();\n    b.expect(\"msg\");\n    c.unwrap_or(0);\n    d.unwrap_or_else(|| 0);\n    e.expect_err(\"msg\");\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v, vec![(Rule::Tl001, 2), (Rule::Tl001, 3)]);
    }

    #[test]
    fn tl001_skips_test_code_and_comments() {
        let src = "// a.unwrap() in a comment\n#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl002_flags_panic_family() {
        let src = "fn f() {\n    panic!(\"boom\");\n    todo!();\n    unreachable!();\n    unimplemented!();\n    debug_assert!(true);\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|(r, _)| *r == Rule::Tl002));
    }

    #[test]
    fn tl003_flags_nondeterminism_outside_bench() {
        let src = "fn f() {\n    let r = thread_rng();\n    let t = Instant::now();\n}\n";
        assert_eq!(violations("crates/nn/src/lib.rs", src).len(), 2);
        assert!(violations("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_flags_float_comparisons() {
        let src =
            "fn f() {\n    if x == 0.0 {}\n    if y as f32 != z {}\n    if n == 0 {}\n    if v[0] == w[1] {}\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(v, vec![(Rule::Tl004, 2), (Rule::Tl004, 3)]);
    }

    #[test]
    fn tl004_ignores_pattern_arrows_and_orderings() {
        let src =
            "fn f() {\n    if a <= 1.0 {}\n    if b >= 2.0 {}\n    match c { _ => 3.0 };\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_tuple_indices_are_not_floats() {
        // The old line heuristic saw `.0.1` as a float literal.
        let src = "fn f() {\n    if pair.0.1 != other.0.1 {}\n    if m[k].2.0 == n {}\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_string_contents_are_not_floats() {
        let src = "fn f() {\n    assert!(name != \"v1.5\", \"saw 2.5\");\n    if tag != other { log(\"3.14\") }\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_ranges_are_not_floats() {
        let src = "fn f() {\n    for i in 1..10 { if i == j {} }\n    if (0..5).len() == 5 {}\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl004_true_float_comparisons_still_fire() {
        let src =
            "fn f() {\n    if loss == 0.0 {}\n    if (x as f32) != y {}\n    if a != 1e-6 {}\n}\n";
        let v = violations("crates/x/src/lib.rs", src);
        assert_eq!(
            v,
            vec![(Rule::Tl004, 2), (Rule::Tl004, 3), (Rule::Tl004, 4)]
        );
    }

    #[test]
    fn tl005_only_in_tensor_and_core() {
        let src = "pub fn undocumented() {}\n";
        assert_eq!(
            violations("crates/tensor/src/lib.rs", src),
            vec![(Rule::Tl005, 1)]
        );
        assert_eq!(
            violations("crates/core/src/lib.rs", src),
            vec![(Rule::Tl005, 1)]
        );
        assert!(violations("crates/nn/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl005_accepts_docs_above_attributes() {
        let src = "/// Documented.\n#[must_use]\npub fn documented() {}\n";
        assert!(violations("crates/tensor/src/lib.rs", src).is_empty());
    }

    #[test]
    fn tl006_flags_thread_spawning_outside_exec() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n    thread::Builder::new();\n}\n";
        let v = violations("crates/nn/src/lib.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(r, _)| *r == Rule::Tl006));
        assert!(violations("crates/tensor/src/exec.rs", src).is_empty());
        // The executor's former home no longer gets a pass.
        assert!(!violations("crates/core/src/exec.rs", src).is_empty());
        assert!(violations("crates/bench/benches/exec_speedup.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() {\n    panic!(\"guard\"); // lint: allow(TL002)\n}\n";
        assert!(violations("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn every_rule_has_rationale_and_waiver() {
        for rule in ALL_RULES {
            assert!(!rule.rationale().is_empty(), "{}", rule.code());
            assert!(rule.waiver().starts_with("// lint:"), "{}", rule.code());
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
        }
    }

    #[test]
    fn design_doc_table_matches_rule_descriptions() {
        // DESIGN.md §6's rule table is the single source of truth shared
        // with `--explain`: each row carries the exact description string.
        // Enumerating the IDs numerically (rather than via ALL_RULES) means
        // a rule added to the enum but dropped from ALL_RULES — or shipped
        // without a table row or --explain entry — fails here.
        let design = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md"),
        )
        .expect("DESIGN.md is readable from the workspace");
        for n in 1..=16 {
            let code = format!("TL{n:03}");
            let rule =
                Rule::from_code(&code).unwrap_or_else(|| panic!("{code} missing from ALL_RULES"));
            let row = format!("| {} | {} |", rule.code(), rule.description());
            assert!(
                design.contains(&row),
                "DESIGN.md §6 table is out of sync for {code}: expected a row starting `{row}`",
            );
            assert!(
                !rule.rationale().trim().is_empty(),
                "{code} has an empty --explain rationale"
            );
            assert!(
                rule.waiver().starts_with("// lint:"),
                "{code} has no --explain waiver syntax"
            );
        }
        assert_eq!(ALL_RULES.len(), 16, "rule count drifted from this test");
    }
}
