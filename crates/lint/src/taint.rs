//! Determinism taint propagation over the workspace call-graph.
//!
//! The execution engine's guarantee — parallel training bitwise-identical
//! to serial — holds only while every function reachable from a *seeded
//! root* is deterministic. The roots are declared here, mirroring the
//! system's contract:
//!
//! * `TagletsSystem::run` (the staged pipeline),
//! * `ServingEngine::run` and `Router::run` (the single-engine and
//!   multi-replica replay drivers — routed serving promises byte-identical
//!   telemetry per seed, so everything dispatch reaches must be
//!   deterministic),
//! * every `TagletModule::train` implementation,
//! * every method of `core::exec::Executor`,
//! * the eval sweep (`sweep_method`),
//! * the sharded-SCADS surface: the boundary exchange between Jacobi
//!   sweeps (`exchange_boundaries`), the sharded solve (`retrofit_sharded`)
//!   and every method of the `ShardedScads` coordinator — the shard merge
//!   is only bitwise-stable while everything it reaches is deterministic.
//!
//! A breadth-first walk from each root visits everything the call-graph can
//! reach; any [`FactKind`](crate::items::FactKind) found along the way
//! becomes a TL007 violation carrying the full call chain (root → … →
//! containing function), reconstructed from BFS parent pointers, so the
//! diagnostic explains *how* the seeded path reaches the source. TL008
//! (map iteration) and TL009 (unseeded RNG) fire at the fact site itself,
//! reachable or not.
//!
//! Sites are silenced either per-rule (`// lint: allow(TL008)`) or with the
//! determinism waiver `// lint: nondeterministic(reason)`, which suppresses
//! all three rules at that line but *must* carry a non-empty reason.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::items::{Fact, FactKind, FnInfo};
use crate::rules::{Hop, Rule, Violation};

/// True for functions the determinism contract declares as seeded roots.
pub fn is_root(f: &FnInfo) -> bool {
    let impl_type = f.impl_type.as_deref();
    (impl_type == Some("TagletsSystem") && f.name == "run")
        || (impl_type == Some("ServingEngine") && f.name == "run")
        || (impl_type == Some("Router") && f.name == "run")
        || (f.trait_name.as_deref() == Some("TagletModule") && f.name == "train")
        || impl_type == Some("Executor")
        || impl_type == Some("ShardedScads")
        || f.name == "sweep_method"
        || f.name == "exchange_boundaries"
        || f.name == "retrofit_sharded"
}

/// Runs the analysis: produces TL007 (reachable nondeterminism, with
/// chains), TL008 and TL009 violations, already filtered by rule scope and
/// per-site suppressions.
pub fn analyze(graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();

    // Site-level rules first: every fact of the matching kind, wherever it
    // sits in library code.
    for f in &graph.fns {
        for fact in &f.facts {
            let rule = match fact.kind {
                FactKind::MapIter => Rule::Tl008,
                FactKind::RngNotSeedDerived => Rule::Tl009,
                _ => continue,
            };
            if rule.applies_to(&f.file) && !suppressed(fact, rule) {
                out.push(Violation {
                    rule,
                    file: f.file.clone(),
                    line: fact.line,
                    excerpt: format!("{} [{}]", fact.what, fact.kind.describe()),
                    chain: Vec::new(),
                });
            }
        }
    }

    // Taint pass: BFS from each root; a fact is reported once, with the
    // first (shortest) chain that reaches it, roots scanned in definition
    // order so output is deterministic.
    let mut reported: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    let roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| is_root(&graph.fns[i]))
        .collect();
    for &root in &roots {
        let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
        let mut seen = vec![false; graph.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        while let Some(at) = queue.pop_front() {
            let f = &graph.fns[at];
            for (fact_idx, fact) in f.facts.iter().enumerate() {
                if !Rule::Tl007.applies_to(&f.file)
                    || suppressed(fact, Rule::Tl007)
                    || reported.contains_key(&(at, fact_idx))
                {
                    continue;
                }
                reported.insert((at, fact_idx), ());
                out.push(Violation {
                    rule: Rule::Tl007,
                    file: f.file.clone(),
                    line: fact.line,
                    excerpt: format!("{} [{}]", fact.what, fact.kind.describe()),
                    chain: chain_to(graph, &parent, root, at),
                });
            }
            for &(next, _) in &graph.edges[at] {
                if !seen[next] {
                    seen[next] = true;
                    parent[next] = Some(at);
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

/// True when the fact's line suppresses `rule` — either an explicit
/// `allow(TLxxx)` or a reasoned `nondeterministic(...)` waiver.
fn suppressed(fact: &Fact, rule: Rule) -> bool {
    fact.waived || fact.allows.iter().any(|a| a == rule.code())
}

/// Reconstructs root → … → `at` from BFS parent pointers. Shared with the
/// concurrency stage, whose TL011 chains are built the same way.
pub(crate) fn chain_to(
    graph: &CallGraph,
    parent: &[Option<usize>],
    root: usize,
    at: usize,
) -> Vec<Hop> {
    let mut rev = vec![at];
    let mut cursor = at;
    while cursor != root {
        match parent[cursor] {
            Some(p) => {
                rev.push(p);
                cursor = p;
            }
            None => break,
        }
    }
    rev.reverse();
    rev.into_iter()
        .map(|i| {
            let f = &graph.fns[i];
            Hop {
                name: f.qualified(),
                file: f.file.clone(),
                line: f.line,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::items::extract;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn analyze_src(src: &str) -> Vec<Violation> {
        let lines = scan(src);
        analyze(&build(
            extract("crates/core/src/system.rs", &lex(src), &lines).fns,
        ))
    }

    #[test]
    fn roots_cover_the_contract() {
        let src = "impl TagletsSystem {\n    fn run(&self) {}\n}\nimpl TagletModule for FixMatch {\n    fn train(&self) {}\n}\nimpl Executor {\n    fn map_indexed(&self) {}\n}\nimpl<'a> ServingEngine<'a> {\n    fn run() {}\n    fn submit(&self) {}\n}\nimpl<'a> Router<'a> {\n    fn run() {}\n    fn dispatch(&self) {}\n}\nimpl<'a, X> ShardedScads<'a, X> {\n    fn related_concepts(&self) {}\n}\nfn sweep_method() {}\nfn exchange_boundaries() {}\nfn retrofit_sharded() {}\nfn helper() {}\n";
        let lines = scan(src);
        let fns = extract("crates/core/src/system.rs", &lex(src), &lines).fns;
        let rooted: Vec<bool> = fns.iter().map(is_root).collect();
        assert_eq!(
            rooted,
            vec![true, true, true, true, false, true, false, true, true, true, true, false]
        );
    }

    #[test]
    fn reachable_time_source_is_reported_with_chain() {
        let src = "impl TagletsSystem {\n    fn run(&self) { self.stage(); }\n    fn stage(&self) { jitter(); }\n}\nfn jitter() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl007);
        let names: Vec<&str> = v[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["TagletsSystem::run", "TagletsSystem::stage", "jitter"]
        );
    }

    #[test]
    fn unreachable_sources_do_not_taint() {
        let src = "impl TagletsSystem {\n    fn run(&self) {}\n}\nfn orphan() { let t = Instant::now(); }\n";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn waiver_with_reason_silences_all_three_rules() {
        let src = "impl TagletsSystem {\n    fn run(&self) {\n        let t = Instant::now(); // lint: nondeterministic(stage telemetry only)\n        let r = thread_rng(); // lint: nondeterministic(exploratory sampling, not part of results)\n    }\n}\n";
        assert!(analyze_src(src).is_empty());
    }

    #[test]
    fn reasonless_waiver_does_not_silence() {
        let src = "impl TagletsSystem {\n    fn run(&self) {\n        let t = Instant::now(); // lint: nondeterministic()\n    }\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl007);
    }

    #[test]
    fn site_rules_fire_without_reachability() {
        let src = "fn untouched(m: &HashMap<u8, u8>) {\n    for x in m { }\n    let r = StdRng::seed_from_u64(x);\n}\n";
        let v = analyze_src(src);
        let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![Rule::Tl008, Rule::Tl009]);
    }

    #[test]
    fn allow_silences_one_rule_only() {
        let src = "fn f(m: &HashMap<u8, u8>) {\n    for x in m { } // lint: allow(TL008)\n    let r = thread_rng(); // lint: allow(TL008)\n}\n";
        let v = analyze_src(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Tl009);
    }
}
