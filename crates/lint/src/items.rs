//! Item extraction: turns a token stream into per-function records.
//!
//! For every `fn` in a file this pass records where it lives (file, line,
//! enclosing `impl` type and trait), which *determinism facts* its body
//! exhibits — direct nondeterminism sources the taint analysis treats as
//! sinks — and which functions it calls. The extractor is syntactic: it has
//! no type information, so call targets are names (optionally qualified)
//! that [`crate::callgraph`] later resolves over-approximately, and map
//! iteration is tracked only for bindings whose `let` statement or parameter
//! type visibly mentions `HashMap`/`HashSet`.
//!
//! Closure bodies are attributed to the enclosing function — a
//! `thread::spawn(|| Instant::now())` taints the function that spawns it —
//! while nested named `fn`s become records of their own.

use std::collections::BTreeSet;

use crate::lexer::{Tok, Token};
use crate::scanner::SourceLine;

/// A direct nondeterminism source found in a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// `Instant::now()` / `SystemTime::now()` produced a value.
    TimeAsData,
    /// `thread::spawn` / `thread::scope` / `thread::Builder` outside the
    /// execution engine.
    ThreadSpawn,
    /// RNG constructed from entropy, or seeded with a value that is not
    /// visibly derived from a seed (`thread_rng`, `from_entropy`,
    /// `rand::random`, `seed_from_u64(<opaque>)`).
    RngNotSeedDerived,
    /// Iteration over a `HashMap`/`HashSet`, whose order is unspecified.
    MapIter,
}

impl FactKind {
    /// Human description used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            FactKind::TimeAsData => "wall-clock time used as data",
            FactKind::ThreadSpawn => "thread spawned outside core::exec",
            FactKind::RngNotSeedDerived => "RNG not derived from a seed",
            FactKind::MapIter => "iteration over unordered HashMap/HashSet",
        }
    }
}

/// One determinism fact, located and carrying its suppression state.
#[derive(Debug, Clone)]
pub struct Fact {
    pub kind: FactKind,
    /// 1-based line of the source expression.
    pub line: usize,
    /// Short rendering of the offending expression for diagnostics.
    pub what: String,
    /// Rule codes suppressed at this line via `lint: allow(...)`.
    pub allows: Vec<String>,
    /// True when the line carries a `lint: nondeterministic(reason)` waiver
    /// with a non-empty reason.
    pub waived: bool,
}

/// A concurrency-safety fact: direct evidence of shared mutable state or
/// relaxed synchronisation, extracted for the [`crate::concurrency`] stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CFactKind {
    /// An `unsafe` keyword (block, fn, impl, or trait).
    UnsafeCode,
    /// An interior-mutability type mentioned outside a `use` item (`Mutex`,
    /// `RwLock`, `RefCell`, `Cell`, `UnsafeCell`, `OnceCell`/`OnceLock`,
    /// `LazyCell`/`LazyLock`, any `Atomic*`), or a `static mut` item.
    InteriorMutability,
    /// An atomic memory ordering weaker than `SeqCst`
    /// (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`).
    WeakOrdering,
}

impl CFactKind {
    /// Human description used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            CFactKind::UnsafeCode => "unsafe code without a reasoned waiver",
            CFactKind::InteriorMutability => "interior-mutability type (shared mutable state)",
            CFactKind::WeakOrdering => "atomic ordering weaker than SeqCst",
        }
    }
}

/// One concurrency fact, located and carrying its suppression state.
///
/// Facts inside a `fn` body land on that function's record (so the
/// call-graph can propagate them from dispatch points); facts at file scope
/// — struct fields, statics — land on [`Extraction::file_cfacts`], since no
/// call edge can reach a declaration.
#[derive(Debug, Clone)]
pub struct CFact {
    pub kind: CFactKind,
    /// 1-based line of the source expression.
    pub line: usize,
    /// Short rendering of the offending expression for diagnostics.
    pub what: String,
    /// Rule codes suppressed at this line via `lint: allow(...)`.
    pub allows: Vec<String>,
    /// True when the line carries the matching reasoned waiver with a
    /// non-empty reason: `lint: unsafe(reason)` for [`CFactKind::UnsafeCode`],
    /// `lint: concurrency(reason)` for the other kinds.
    pub waived: bool,
}

/// A hot-path hygiene fact: direct evidence of an allocation, a blocking
/// operation, or a panic-capable expression, extracted for the
/// [`crate::hotpath`] stage. Facts only matter when a BFS from a
/// latency-critical root reaches the containing function, so extraction is
/// deliberately eager — reachability, setup cuts, and waivers do the
/// filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HFactKind {
    /// A heap allocation: `Vec::new`/`with_capacity`, `vec![]`, `Box::new`,
    /// `String::from`, `format!`, `.to_vec()`, `.collect()`, `.clone()`,
    /// `.to_string()`, `.to_owned()`.
    HeapAlloc,
    /// A blocking operation: `Mutex`/`RwLock` lock acquisition, channel
    /// `recv`, `std::fs`/`std::io` calls, `thread::sleep`.
    Blocking,
    /// A panic-capable op: slice/array `[i]` indexing, `copy_from_slice`,
    /// integer division/modulo by a non-literal divisor.
    PanicCapable,
}

impl HFactKind {
    /// Human description used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            HFactKind::HeapAlloc => "heap allocation on a latency-critical path",
            HFactKind::Blocking => "blocking operation on a latency-critical path",
            HFactKind::PanicCapable => "panic-capable op on the serve path",
        }
    }
}

/// One hot-path fact, located and carrying its suppression state. At most
/// one fact per (kind, line) is recorded — `a[i][j] = b[k]` is one indexing
/// site needing one waiver, not three.
#[derive(Debug, Clone)]
pub struct HFact {
    pub kind: HFactKind,
    /// 1-based line of the source expression.
    pub line: usize,
    /// Short rendering of the offending expression for diagnostics.
    pub what: String,
    /// Rule codes suppressed at this line via `lint: allow(...)`.
    pub allows: Vec<String>,
    /// True when the line carries the matching reasoned waiver with a
    /// non-empty reason: `lint: alloc(reason)` for [`HFactKind::HeapAlloc`],
    /// `lint: panicfree(reason)` for [`HFactKind::PanicCapable`]. Blocking
    /// ops have no reasoned waiver — a blocking call on a hot path is
    /// either cut or explicitly `allow(TL015)`ed.
    pub waived: bool,
}

/// An outgoing call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (`select`, `now`, ...).
    pub name: String,
    /// Path or receiver-type qualifier when visible: `Executor` for
    /// `Executor::run`, the impl type for `self.method(...)`.
    pub qualifier: Option<String>,
    /// 1-based line of the call site.
    pub line: usize,
}

/// One function extracted from a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name (`run`, `train`).
    pub name: String,
    /// Enclosing `impl` self-type, when any (`TagletsSystem`).
    pub impl_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub facts: Vec<Fact>,
    /// Concurrency-safety facts found in the body.
    pub cfacts: Vec<CFact>,
    /// Hot-path hygiene facts (allocation / blocking / panic-capable) found
    /// in the body, consumed by the [`crate::hotpath`] reachability walk.
    pub hfacts: Vec<HFact>,
    /// Lines of executor dispatch sites in the body (`executor.map(...)`,
    /// `exec.for_each(...)`, `Executor::run(...)`, `scope.spawn(...)`).
    /// Non-empty means this function hands closures to worker threads.
    pub dispatches: Vec<usize>,
    pub calls: Vec<Call>,
}

impl FnInfo {
    /// Display name: `Type::name` inside an impl, plain `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "impl", "struct", "enum",
    "trait", "type", "use", "mod", "pub", "unsafe", "move", "as", "in", "where", "ref", "mut",
    "break", "continue", "dyn", "await",
];

#[derive(Debug)]
enum Scope {
    /// `impl Type` / `impl Trait for Type` block.
    Impl {
        type_name: Option<String>,
        trait_name: Option<String>,
    },
    /// A function body; indexes into the output vec.
    Fn {
        index: usize,
    },
    Other,
}

/// Everything one file contributes to the workspace-level analyses.
#[derive(Debug, Default)]
pub struct Extraction {
    /// All non-test functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Concurrency facts found *outside* any function body — struct fields
    /// holding interior-mutability types, `static mut` items, `unsafe impl`.
    pub file_cfacts: Vec<CFact>,
}

/// Extracts all non-test functions (plus file-scope concurrency facts) from
/// one lexed file. `lines` supplies test-region and suppression metadata for
/// each source line.
pub fn extract(file: &str, tokens: &[Token], lines: &[SourceLine]) -> Extraction {
    let in_exec = file.ends_with("tensor/src/exec.rs");
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut file_cfacts: Vec<CFact> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Pending scope classification for the next `{`.
    let mut pending: Option<Scope> = None;
    // HashMap/HashSet-typed bindings per open fn scope (parallel stack).
    let mut map_locals: Vec<BTreeSet<String>> = Vec::new();

    let in_test = |line: usize| -> bool {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.in_test)
            .unwrap_or(false)
    };
    let line_meta = |line: usize| -> (Vec<String>, bool) {
        lines
            .get(line.saturating_sub(1))
            .map(|l| (l.allows.clone(), l.nondet_reason.is_some()))
            .unwrap_or_default()
    };
    // `use std::sync::Mutex;` names a type without touching shared state —
    // import lines never produce concurrency facts.
    let is_use_line = |line: usize| -> bool {
        lines
            .get(line.saturating_sub(1))
            .map(|l| {
                let t = l.code.trim_start();
                t.starts_with("use ") || t.starts_with("pub use ")
            })
            .unwrap_or(false)
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        match &tok.kind {
            Tok::Ident(name) if name == "impl" => {
                let (scope, next) = parse_impl_header(tokens, i + 1);
                pending = Some(scope);
                i = next;
                continue;
            }
            Tok::Ident(name) if name == "fn" => {
                if let Some(Tok::Ident(fn_name)) = tokens.get(i + 1).map(|t| &t.kind) {
                    if in_test(tok.line) {
                        i += 2;
                        continue;
                    }
                    let (impl_type, trait_name) = enclosing_impl(&scopes, &fns);
                    let (param_maps, next) = parse_signature(tokens, i + 2);
                    let index = fns.len();
                    fns.push(FnInfo {
                        name: fn_name.clone(),
                        impl_type,
                        trait_name,
                        file: file.to_string(),
                        line: tok.line,
                        facts: Vec::new(),
                        cfacts: Vec::new(),
                        hfacts: Vec::new(),
                        dispatches: Vec::new(),
                        calls: Vec::new(),
                    });
                    // A trait method *declaration* ends in `;` — parse past
                    // the signature; the `{` case arms the fn scope.
                    if tokens.get(next).map(|t| t.is_punct(";")).unwrap_or(false) {
                        fns.pop();
                        i = next + 1;
                        continue;
                    }
                    pending = Some(Scope::Fn { index });
                    map_locals.push(param_maps);
                    i = next;
                    continue;
                }
                i += 1;
                continue;
            }
            Tok::Open('{') => {
                scopes.push(pending.take().unwrap_or(Scope::Other));
                i += 1;
                continue;
            }
            Tok::Close('}') => {
                // map_locals frames pair 1:1 with Fn scopes (pushed when the
                // signature was parsed), so they pop together.
                if let Some(Scope::Fn { .. }) = scopes.last() {
                    map_locals.pop();
                }
                scopes.pop();
                i += 1;
                continue;
            }
            _ => {}
        }

        // Concurrency facts are collected at *any* scope depth: a struct
        // field holding a `Cell` or a `static mut` sits outside every fn
        // body, where no call edge can reach, so those land on the file
        // record; facts inside a body land on the enclosing function so the
        // dispatch taint walk can propagate them. Test-fn bodies are not
        // attributed to any record, hence the explicit per-line test check.
        if let Tok::Ident(name) = &tok.kind {
            if !in_test(tok.line) && !is_use_line(tok.line) {
                if let Some((kind, what)) = concurrency_fact(tokens, i, name) {
                    let sink = match innermost_fn(&scopes) {
                        Some(fn_index) => &mut fns[fn_index].cfacts,
                        None => &mut file_cfacts,
                    };
                    push_cfact(sink, kind, tok.line, what, lines);
                }
            }
        }

        // Everything below only matters inside a function body.
        let Some(fn_index) = innermost_fn(&scopes) else {
            i += 1;
            continue;
        };

        // Hot-path hygiene facts: allocation / blocking / panic-capable
        // evidence for the [`crate::hotpath`] stage. Collected without
        // consuming tokens, so call recording below sees the same stream.
        match &tok.kind {
            Tok::Ident(name) => {
                if let Some((kind, what)) = hotpath_fact(tokens, i, name) {
                    push_hfact(&mut fns[fn_index], kind, tok.line, what, lines);
                }
            }
            Tok::Open('[') => {
                if let Some(what) = indexing_site(tokens, i) {
                    push_hfact(
                        &mut fns[fn_index],
                        HFactKind::PanicCapable,
                        tok.line,
                        what,
                        lines,
                    );
                }
            }
            Tok::Punct(op) if matches!(*op, "/" | "%" | "/=" | "%=") => {
                if let Some(what) = integer_division_site(tokens, i, op) {
                    push_hfact(
                        &mut fns[fn_index],
                        HFactKind::PanicCapable,
                        tok.line,
                        what,
                        lines,
                    );
                }
            }
            _ => {}
        }

        if let Tok::Ident(name) = &tok.kind {
            // `let [mut] name ... = ... ;` — mark HashMap/HashSet bindings.
            if name == "let" {
                if let Some((binding, mentions_map)) = scan_let(tokens, i + 1) {
                    if mentions_map {
                        if let Some(set) = map_locals.last_mut() {
                            set.insert(binding);
                        }
                    }
                }
                i += 1;
                continue;
            }

            let next_kind = tokens.get(i + 1).map(|t| &t.kind);

            // `Instant::now()` / `SystemTime::now()`.
            if (name == "Instant" || name == "SystemTime")
                && matches!(next_kind, Some(Tok::Punct("::")))
                && tokens.get(i + 2).and_then(Token::ident) == Some("now")
            {
                push_fact(
                    &mut fns[fn_index],
                    FactKind::TimeAsData,
                    tok.line,
                    format!("{name}::now()"),
                    &line_meta,
                );
                i += 3;
                continue;
            }

            // `thread::spawn` / `thread::scope` / `thread::Builder`.
            if name == "thread" && matches!(next_kind, Some(Tok::Punct("::"))) && !in_exec {
                if let Some(what) = tokens.get(i + 2).and_then(Token::ident) {
                    if matches!(what, "spawn" | "scope" | "Builder") {
                        push_fact(
                            &mut fns[fn_index],
                            FactKind::ThreadSpawn,
                            tok.line,
                            format!("thread::{what}"),
                            &line_meta,
                        );
                        i += 3;
                        continue;
                    }
                }
            }

            // Entropy-based RNG construction.
            let entropy = name == "thread_rng"
                || name == "from_entropy"
                || (name == "random"
                    && i >= 2
                    && tokens[i - 1].is_punct("::")
                    && tokens[i - 2].ident() == Some("rand"));
            if entropy {
                push_fact(
                    &mut fns[fn_index],
                    FactKind::RngNotSeedDerived,
                    tok.line,
                    format!("{name}()"),
                    &line_meta,
                );
                record_call(&mut fns[fn_index], tokens, i);
                i += 1;
                continue;
            }

            // Seeded RNG whose seed expression is not visibly seed-derived.
            if (name == "seed_from_u64" || name == "from_seed")
                && matches!(next_kind, Some(Tok::Open('(')))
                && !seed_arg_is_derived(tokens, i + 2)
            {
                push_fact(
                    &mut fns[fn_index],
                    FactKind::RngNotSeedDerived,
                    tok.line,
                    format!("{name}(<not seed-derived>)"),
                    &line_meta,
                );
                i += 1;
                continue;
            }

            // Iteration over a tracked HashMap/HashSet binding:
            // `m.iter()`, `m.keys()`, ..., and `for x in [&][mut] m`.
            if is_map_local(&map_locals, name) {
                if tokens.get(i + 1).map(|t| t.is_punct(".")).unwrap_or(false) {
                    if let Some(method) = tokens.get(i + 2).and_then(Token::ident) {
                        if matches!(
                            method,
                            "iter"
                                | "iter_mut"
                                | "keys"
                                | "values"
                                | "values_mut"
                                | "into_iter"
                                | "drain"
                        ) {
                            push_fact(
                                &mut fns[fn_index],
                                FactKind::MapIter,
                                tok.line,
                                format!("{name}.{method}()"),
                                &line_meta,
                            );
                            i += 3;
                            continue;
                        }
                    }
                }
            }
            if name == "in" {
                let mut j = i + 1;
                while tokens
                    .get(j)
                    .map(|t| t.is_punct("&") || t.ident() == Some("mut"))
                    .unwrap_or(false)
                {
                    j += 1;
                }
                if let Some(target) = tokens.get(j).and_then(Token::ident) {
                    let ends_stmt = tokens
                        .get(j + 1)
                        .map(|t| matches!(t.kind, Tok::Open('{')))
                        .unwrap_or(false);
                    if ends_stmt && is_map_local(&map_locals, target) {
                        push_fact(
                            &mut fns[fn_index],
                            FactKind::MapIter,
                            tok.line,
                            format!("for _ in {target}"),
                            &line_meta,
                        );
                        i = j + 1;
                        continue;
                    }
                }
            }

            // Executor dispatch sites: the function hands a closure to
            // worker threads here, making it a root for the shared-state
            // taint walk. The receiver must *look like* an executor or a
            // thread-scope handle, so ordinary iterator `.map(...)` chains
            // never count.
            if matches!(next_kind, Some(Tok::Open('('))) && is_dispatch(tokens, i, name) {
                fns[fn_index].dispatches.push(tok.line);
            }

            // Plain call sites: `name(...)`, `Qual::name(...)`, `.name(...)`.
            if matches!(next_kind, Some(Tok::Open('('))) && !KEYWORDS.contains(&name.as_str()) {
                record_call(&mut fns[fn_index], tokens, i);
            }
        }
        i += 1;
    }
    Extraction { fns, file_cfacts }
}

/// Interior-mutability types of the standard library. Matched as exact
/// identifiers (`SweepCell` is not `Cell`), plus the `Atomic*` family by
/// prefix.
const INTERIOR_MUTABILITY: [&str; 9] = [
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "OnceLock",
    "LazyLock",
];

fn is_interior_mutability(name: &str) -> bool {
    INTERIOR_MUTABILITY.contains(&name)
        || (name.starts_with("Atomic") && name.len() > "Atomic".len())
}

/// Classifies the identifier token at `i` as a concurrency fact, if it is
/// one. Token-level matching keeps `#![forbid(unsafe_code)]` (the ident
/// `unsafe_code`) and `std::cmp::Ordering::Less` structurally incapable of
/// false positives.
fn concurrency_fact(tokens: &[Token], i: usize, name: &str) -> Option<(CFactKind, String)> {
    if name == "unsafe" {
        return Some((CFactKind::UnsafeCode, "unsafe".to_string()));
    }
    if name == "static" && tokens.get(i + 1).and_then(Token::ident) == Some("mut") {
        return Some((CFactKind::InteriorMutability, "static mut".to_string()));
    }
    if is_interior_mutability(name) {
        return Some((CFactKind::InteriorMutability, name.to_string()));
    }
    if name == "Ordering" && tokens.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false) {
        if let Some(variant) = tokens.get(i + 2).and_then(Token::ident) {
            if matches!(variant, "Relaxed" | "Acquire" | "Release" | "AcqRel") {
                return Some((CFactKind::WeakOrdering, format!("Ordering::{variant}")));
            }
        }
    }
    None
}

/// Appends a concurrency fact, capturing the line's suppression metadata.
/// Which reasoned waiver applies depends on the kind: `unsafe(reason)` for
/// unsafe code, `concurrency(reason)` for shared-state facts.
fn push_cfact(
    out: &mut Vec<CFact>,
    kind: CFactKind,
    line: usize,
    what: String,
    lines: &[SourceLine],
) {
    let meta = lines.get(line.saturating_sub(1));
    let allows = meta.map(|l| l.allows.clone()).unwrap_or_default();
    let waived = match kind {
        CFactKind::UnsafeCode => meta.map(|l| l.unsafe_reason.is_some()).unwrap_or(false),
        CFactKind::InteriorMutability | CFactKind::WeakOrdering => {
            meta.map(|l| l.conc_reason.is_some()).unwrap_or(false)
        }
    };
    out.push(CFact {
        kind,
        line,
        what,
        allows,
        waived,
    });
}

/// Classifies the identifier token at `i` as a hot-path hygiene fact, if it
/// is one. Shapes recognised:
/// - method calls `.name(` / `.name::<..>(`: allocating (`to_vec`, `clone`,
///   `collect`, ...), blocking (`lock`, `recv*`, and argument-less
///   `read()`/`write()` — the `RwLock` shape; the `io` variants take a
///   buffer argument), panic-capable (`copy_from_slice`, `clone_from_slice`)
/// - qualified calls `Type::method(`: `Vec::new`/`with_capacity`,
///   `Box::new`, `String::from`, `File::open`, `thread::sleep`, `fs::*`,
///   `io::*`
/// - macro invocations `vec![..]`, `format!(..)`
fn hotpath_fact(tokens: &[Token], i: usize, name: &str) -> Option<(HFactKind, String)> {
    let prev_dot = i >= 1 && tokens[i - 1].is_punct(".");
    let next = tokens.get(i + 1);
    let next_open = matches!(next.map(|t| &t.kind), Some(Tok::Open('(')));
    let next_turbofish = next.map(|t| t.is_punct("::")).unwrap_or(false);

    if prev_dot && (next_open || next_turbofish) {
        match name {
            "to_vec" | "to_string" | "to_owned" | "clone" | "collect" => {
                return Some((HFactKind::HeapAlloc, format!(".{name}()")));
            }
            "lock" | "recv" | "recv_timeout" | "recv_deadline" => {
                return Some((HFactKind::Blocking, format!(".{name}()")));
            }
            "copy_from_slice" | "clone_from_slice" => {
                return Some((HFactKind::PanicCapable, format!(".{name}(..)")));
            }
            "read" | "write"
                if next_open
                    && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(Tok::Close(')'))) =>
            {
                return Some((HFactKind::Blocking, format!(".{name}()")));
            }
            _ => {}
        }
    }

    if next_turbofish {
        if let Some(method) = tokens.get(i + 2).and_then(Token::ident) {
            if matches!(tokens.get(i + 3).map(|t| &t.kind), Some(Tok::Open('('))) {
                if matches!(name, "Vec" | "VecDeque" | "Box" | "String")
                    && matches!(method, "new" | "with_capacity" | "from")
                {
                    return Some((HFactKind::HeapAlloc, format!("{name}::{method}()")));
                }
                if name == "thread" && method == "sleep" {
                    return Some((HFactKind::Blocking, "thread::sleep".to_string()));
                }
                if name == "File" && matches!(method, "open" | "create") {
                    return Some((HFactKind::Blocking, format!("File::{method}()")));
                }
                if matches!(name, "fs" | "io") {
                    return Some((HFactKind::Blocking, format!("{name}::{method}()")));
                }
            }
        }
    }

    if matches!(name, "vec" | "format") && next.map(|t| t.is_punct("!")).unwrap_or(false) {
        return Some((HFactKind::HeapAlloc, format!("{name}![..]")));
    }
    None
}

/// `[` at `i` opens an index expression when the preceding token is a value
/// (identifier or closing bracket): `buf[i]`, `row(r)[c]`, `grid[r][c]`.
/// Attribute (`#[..]`), slice-literal (`&[..]`, `= [..]`), type
/// (`: [f32; 4]`), and pattern positions are excluded because their
/// preceding token is not value-like; keyword identifiers exclude
/// `for x in [..]` and `&mut [f32]`.
fn indexing_site(tokens: &[Token], i: usize) -> Option<String> {
    if i == 0 {
        return None;
    }
    match &tokens[i - 1].kind {
        Tok::Close(')') | Tok::Close(']') => Some("[..] indexing".to_string()),
        Tok::Ident(prev) if !KEYWORDS.contains(&prev.as_str()) => {
            Some(format!("{prev}[..] indexing"))
        }
        _ => None,
    }
}

/// A `/`-family operator at `i` counts as panic-capable integer division
/// when the divisor is an identifier (a literal divisor cannot be zero, so
/// `x / 2` is fine) and the line shows no floating-point evidence — float
/// literals or `f32`/`f64` identifiers — since float division never panics.
fn integer_division_site(tokens: &[Token], i: usize, op: &str) -> Option<String> {
    let divisor = tokens.get(i + 1).and_then(Token::ident)?;
    if KEYWORDS.contains(&divisor) {
        return None;
    }
    let line = tokens[i].line;
    let mut lo = i;
    while lo > 0 && tokens[lo - 1].line == line {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < tokens.len() && tokens[hi + 1].line == line {
        hi += 1;
    }
    let floaty = tokens[lo..=hi]
        .iter()
        .any(|t| matches!(t.kind, Tok::Float) || matches!(t.ident(), Some("f32") | Some("f64")));
    if floaty {
        return None;
    }
    Some(format!("{op} {divisor} (integer division)"))
}

/// Appends a hot-path fact, capturing the line's suppression metadata and
/// deduplicating per (kind, line): one waiver covers one line, so
/// `a[i] = b[j]` is a single panic-capable site.
fn push_hfact(f: &mut FnInfo, kind: HFactKind, line: usize, what: String, lines: &[SourceLine]) {
    if f.hfacts.iter().any(|h| h.kind == kind && h.line == line) {
        return;
    }
    let meta = lines.get(line.saturating_sub(1));
    let allows = meta.map(|l| l.allows.clone()).unwrap_or_default();
    let waived = match kind {
        HFactKind::HeapAlloc => meta.map(|l| l.alloc_reason.is_some()).unwrap_or(false),
        HFactKind::PanicCapable => meta.map(|l| l.panicfree_reason.is_some()).unwrap_or(false),
        // Blocking has no reasoned waiver: a blocking call on a hot path is
        // either unreachable (setup cut) or explicitly `allow(TL015)`ed.
        HFactKind::Blocking => false,
    };
    f.hfacts.push(HFact {
        kind,
        line,
        what,
        allows,
        waived,
    });
}

/// True when the call at `i` (an identifier followed by `(`) hands closures
/// to worker threads: `map`/`run`/`for_each` on an executor-named receiver
/// (or `Executor::`-qualified), or `spawn` on a thread-scope handle. Also
/// used by [`crate::concurrency`] to locate the closures TL013 inspects.
pub(crate) fn is_dispatch(tokens: &[Token], i: usize, name: &str) -> bool {
    let receiver = if i >= 2 && tokens[i - 1].is_punct(".") {
        tokens[i - 2].ident()
    } else {
        None
    };
    let qualifier = if i >= 2 && tokens[i - 1].is_punct("::") {
        tokens[i - 2].ident()
    } else {
        None
    };
    match name {
        "map" | "run" | "for_each" => {
            receiver
                .map(|r| r.to_lowercase().contains("exec"))
                .unwrap_or(false)
                || qualifier == Some("Executor")
        }
        "spawn" => matches!(receiver, Some("scope") | Some("s")),
        _ => false,
    }
}

/// Appends a fact, capturing the line's suppression metadata.
fn push_fact(
    f: &mut FnInfo,
    kind: FactKind,
    line: usize,
    what: String,
    line_meta: &dyn Fn(usize) -> (Vec<String>, bool),
) {
    let (allows, waived) = line_meta(line);
    f.facts.push(Fact {
        kind,
        line,
        what,
        allows,
        waived,
    });
}

/// Records the call at token `i` (an identifier followed by `(`), deriving
/// the qualifier from `Qual::name(` or, for `self.name(`, the impl type
/// resolved later by the call-graph (kept as the literal `self` marker).
fn record_call(f: &mut FnInfo, tokens: &[Token], i: usize) {
    let name = match tokens[i].ident() {
        Some(n) => n.to_string(),
        None => return,
    };
    // Macro invocation `name!(...)` — the `!` sits between name and paren,
    // so this branch never sees it; guard anyway for `name !(`-style spacing.
    if tokens.get(i + 1).map(|t| t.is_punct("!")).unwrap_or(false) {
        return;
    }
    let qualifier = if i >= 2 && tokens[i - 1].is_punct("::") {
        tokens[i - 2].ident().map(str::to_string)
    } else if i >= 2 && tokens[i - 1].is_punct(".") {
        // `self.method(...)` — resolvable to the impl type.
        if i >= 2 && tokens[i - 2].ident() == Some("self") {
            Some("self".to_string())
        } else {
            None
        }
    } else {
        None
    };
    f.calls.push(Call {
        name,
        qualifier,
        line: tokens[i].line,
    });
}

/// After `seed_from_u64(`/`from_seed(`: the argument is considered derived
/// when it contains an integer literal or an identifier mentioning
/// `seed`/`hash` (covers `seed ^ name_hash(name)`, `hash("fmd")`, `0x5eed`).
fn seed_arg_is_derived(tokens: &[Token], start: usize) -> bool {
    let mut depth = 1usize;
    let mut j = start;
    while j < tokens.len() && depth > 0 {
        match &tokens[j].kind {
            Tok::Open('(') => depth += 1,
            Tok::Close(')') => depth -= 1,
            Tok::Int => return true,
            Tok::Ident(id) => {
                let lower = id.to_lowercase();
                if lower.contains("seed") || lower.contains("hash") {
                    return true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// True when `name` is a tracked HashMap/HashSet binding in any open frame.
fn is_map_local(map_locals: &[BTreeSet<String>], name: &str) -> bool {
    map_locals.iter().any(|set| set.contains(name))
}

/// Finds the innermost enclosing fn scope.
fn innermost_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        Scope::Fn { index } => Some(*index),
        _ => None,
    })
}

/// Finds the innermost enclosing impl scope's (type, trait).
fn enclosing_impl(scopes: &[Scope], _fns: &[FnInfo]) -> (Option<String>, Option<String>) {
    for s in scopes.iter().rev() {
        if let Scope::Impl {
            type_name,
            trait_name,
        } = s
        {
            return (type_name.clone(), trait_name.clone());
        }
    }
    (None, None)
}

/// Parses an `impl` header starting after the `impl` keyword; returns the
/// scope and the index of the token that opens the body (or wherever parsing
/// stopped). Handles `impl<T> Foo<T> for bar::Baz<T> where ...`.
fn parse_impl_header(tokens: &[Token], start: usize) -> (Scope, usize) {
    let mut angle = 0isize;
    let mut first_path: Option<String> = None;
    let mut second_path: Option<String> = None;
    let mut saw_for = false;
    let mut collecting = true;
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].kind {
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct("<<") => angle += 2,
            Tok::Punct(">>") => angle -= 2,
            Tok::Punct("->") => {}
            Tok::Ident(id) if angle == 0 => match id.as_str() {
                "for" => {
                    saw_for = true;
                }
                "where" => collecting = false,
                _ if collecting => {
                    // Keep the last path segment seen on each side of `for`.
                    if saw_for {
                        second_path = Some(id.clone());
                    } else {
                        first_path = Some(id.clone());
                    }
                }
                _ => {}
            },
            Tok::Open('{') if angle == 0 => break,
            Tok::Punct(";") if angle == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let (type_name, trait_name) = if saw_for {
        (second_path, first_path)
    } else {
        (first_path, None)
    };
    (
        Scope::Impl {
            type_name,
            trait_name,
        },
        j,
    )
}

/// Parses a fn signature from just after the name: skips generics, records
/// which parameters have `HashMap`/`HashSet` types, and returns the set plus
/// the index of the body `{` / terminating `;`.
fn parse_signature(tokens: &[Token], start: usize) -> (BTreeSet<String>, usize) {
    let mut j = start;
    // Skip `<...>` generics.
    if tokens.get(j).map(|t| t.is_punct("<")).unwrap_or(false) {
        let mut angle = 0isize;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct("<") => angle += 1,
                Tok::Punct(">") => angle -= 1,
                Tok::Punct("<<") => angle += 2,
                Tok::Punct(">>") => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle == 0 {
                break;
            }
        }
    }
    let mut maps = BTreeSet::new();
    if tokens
        .get(j)
        .map(|t| matches!(t.kind, Tok::Open('(')))
        .unwrap_or(false)
    {
        let mut depth = 0usize;
        let mut current_param: Option<String> = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Open('(') => depth += 1,
                Tok::Close(')') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(":") if depth == 1 => {
                    // The ident just before `:` is the parameter name.
                    if let Some(name) = tokens.get(j.wrapping_sub(1)).and_then(Token::ident) {
                        current_param = Some(name.to_string());
                    }
                }
                Tok::Punct(",") if depth == 1 => current_param = None,
                Tok::Ident(id) if depth >= 1 => {
                    if (id == "HashMap" || id == "HashSet") && current_param.is_some() {
                        if let Some(p) = &current_param {
                            maps.insert(p.clone());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Skip return type / where clause up to the body `{` or `;`.
    let mut angle = 0isize;
    while j < tokens.len() {
        match &tokens[j].kind {
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct("<<") => angle += 2,
            Tok::Punct(">>") => angle -= 2,
            Tok::Open('{') if angle <= 0 => break,
            Tok::Punct(";") if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    (maps, j)
}

/// Scans a `let` statement from just after the keyword; returns the binding
/// name and whether the statement mentions `HashMap`/`HashSet` before `;`.
fn scan_let(tokens: &[Token], start: usize) -> Option<(String, bool)> {
    let mut j = start;
    if tokens.get(j).and_then(Token::ident) == Some("mut") {
        j += 1;
    }
    let binding = tokens.get(j).and_then(Token::ident)?.to_string();
    let mut depth = 0isize;
    let mut mentions = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            Tok::Punct(";") if depth == 0 => break,
            Tok::Ident(id) if id == "HashMap" || id == "HashSet" => mentions = true,
            _ => {}
        }
        j += 1;
    }
    Some((binding, mentions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn extract_src(src: &str) -> Vec<FnInfo> {
        extract("crates/x/src/lib.rs", &lex(src), &scan(src)).fns
    }

    #[test]
    fn impl_and_trait_context_is_recorded() {
        let fns = extract_src(
            "impl TagletModule for FixMatch {\n    fn train(&self) {}\n}\nimpl Plain {\n    fn go(&self) {}\n}\nfn free() {}\n",
        );
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].qualified(), "FixMatch::train");
        assert_eq!(fns[0].trait_name.as_deref(), Some("TagletModule"));
        assert_eq!(fns[1].qualified(), "Plain::go");
        assert_eq!(fns[1].trait_name, None);
        assert_eq!(fns[2].qualified(), "free");
    }

    #[test]
    fn time_and_thread_facts_are_found() {
        let fns = extract_src(
            "fn f() {\n    let t = Instant::now();\n    std::thread::spawn(|| SystemTime::now());\n}\n",
        );
        let kinds: Vec<FactKind> = fns[0].facts.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FactKind::TimeAsData,
                FactKind::ThreadSpawn,
                FactKind::TimeAsData
            ]
        );
    }

    #[test]
    fn exec_module_may_spawn_threads() {
        let src = "fn run() { std::thread::scope(|s| {}); }\n";
        let fns = extract("crates/tensor/src/exec.rs", &lex(src), &scan(src)).fns;
        assert!(fns[0].facts.is_empty());
        // The old executor home is a plain re-export shim now; spawning
        // there is no longer exempt.
        let fns = extract("crates/core/src/exec.rs", &lex(src), &scan(src)).fns;
        assert!(!fns[0].facts.is_empty());
    }

    #[test]
    fn rng_seed_derivation_heuristic() {
        let fns = extract_src(
            "fn a(seed: u64) { let r = StdRng::seed_from_u64(seed ^ 3); }\nfn b() { let r = StdRng::seed_from_u64(name_hash(name)); }\nfn c(x: u64) { let r = StdRng::seed_from_u64(x); }\nfn d() { let r = thread_rng(); }\n",
        );
        assert!(fns[0].facts.is_empty(), "seed ident → derived");
        assert!(fns[1].facts.is_empty(), "hash ident → derived");
        assert_eq!(fns[2].facts[0].kind, FactKind::RngNotSeedDerived);
        assert_eq!(fns[3].facts[0].kind, FactKind::RngNotSeedDerived);
    }

    #[test]
    fn map_iteration_is_tracked_through_locals_and_params() {
        let fns = extract_src(
            "fn f(index: &HashMap<String, usize>) {\n    let mut seen = HashSet::new();\n    for k in index { }\n    seen.iter();\n    let v: Vec<u8> = Vec::new();\n    v.iter();\n}\n",
        );
        let kinds: Vec<FactKind> = fns[0].facts.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec![FactKind::MapIter, FactKind::MapIter]);
    }

    #[test]
    fn calls_capture_qualifiers() {
        let fns = extract_src(
            "impl System {\n    fn run(&self) {\n        self.select();\n        Executor::launch();\n        helper();\n        println!(\"no\");\n    }\n}\n",
        );
        let calls: Vec<(Option<&str>, &str)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.qualifier.as_deref(), c.name.as_str()))
            .collect();
        assert_eq!(
            calls,
            vec![
                (Some("self"), "select"),
                (Some("Executor"), "launch"),
                (None, "helper"),
            ]
        );
    }

    #[test]
    fn test_functions_are_skipped() {
        let fns = extract_src(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "lib");
    }

    #[test]
    fn concurrency_facts_split_fn_and_file_scope() {
        let src = "struct Clock {\n    now: Cell<u64>,\n}\nfn claim() {\n    let next = AtomicUsize::new(0);\n    let i = next.fetch_add(1, Ordering::Relaxed);\n}\n";
        let ex = extract("crates/x/src/lib.rs", &lex(src), &scan(src));
        assert_eq!(ex.file_cfacts.len(), 1, "struct field is file-scope");
        assert_eq!(ex.file_cfacts[0].kind, CFactKind::InteriorMutability);
        assert_eq!(ex.file_cfacts[0].what, "Cell");
        let kinds: Vec<CFactKind> = ex.fns[0].cfacts.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![CFactKind::InteriorMutability, CFactKind::WeakOrdering]
        );
        assert_eq!(ex.fns[0].cfacts[1].what, "Ordering::Relaxed");
    }

    #[test]
    fn use_lines_and_lookalike_idents_produce_no_cfacts() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nuse std::cell::Cell;\nfn f() {\n    let forbid = unsafe_code;\n    let c = cmp::Ordering::Less;\n    let s = SweepCell::new();\n    let seq = x.load(Ordering::SeqCst);\n}\n";
        let ex = extract("crates/x/src/lib.rs", &lex(src), &scan(src));
        assert!(ex.file_cfacts.is_empty(), "{:?}", ex.file_cfacts);
        assert!(ex.fns[0].cfacts.is_empty(), "{:?}", ex.fns[0].cfacts);
    }

    #[test]
    fn unsafe_and_static_mut_are_cfacts() {
        let src = "static mut COUNTER: usize = 0;\nfn f() {\n    let n = unsafe { read() };\n    // lint: unsafe(audited: bounds checked above)\n    let m = unsafe { read() };\n}\n";
        let ex = extract("crates/x/src/lib.rs", &lex(src), &scan(src));
        assert_eq!(ex.file_cfacts.len(), 1);
        assert_eq!(ex.file_cfacts[0].what, "static mut");
        let cfacts = &ex.fns[0].cfacts;
        assert_eq!(cfacts.len(), 2);
        assert_eq!(cfacts[0].kind, CFactKind::UnsafeCode);
        assert!(!cfacts[0].waived);
        assert!(cfacts[1].waived, "unsafe(reason) waives the second block");
    }

    #[test]
    fn concurrency_waiver_covers_shared_state_kinds_only() {
        let src = "fn f() {\n    let a = AtomicUsize::new(0); // lint: concurrency(claim counter only)\n    let b = unsafe { read() }; // lint: concurrency(not the right waiver)\n}\n";
        let ex = extract("crates/x/src/lib.rs", &lex(src), &scan(src));
        let cfacts = &ex.fns[0].cfacts;
        assert!(cfacts[0].waived);
        assert!(
            !cfacts[1].waived,
            "unsafe code needs unsafe(reason), not concurrency(reason)"
        );
    }

    #[test]
    fn dispatch_sites_require_executor_like_receivers() {
        let src = "fn a(executor: &Executor) { executor.map(4, |i| i); }\nfn b(exec: &Executor) { exec.for_each(v, |i, x| x); }\nfn c() { scope.spawn(|| {}); }\nfn d(xs: &[u8]) { xs.iter().map(|x| x).count(); }\nfn e() { Executor::run(4); }\n";
        let ex = extract("crates/x/src/lib.rs", &lex(src), &scan(src));
        let dispatched: Vec<bool> = ex.fns.iter().map(|f| !f.dispatches.is_empty()).collect();
        assert_eq!(dispatched, vec![true, true, true, false, true]);
    }

    #[test]
    fn facts_capture_suppressions() {
        let fns = extract_src(
            "fn f() {\n    let t = Instant::now(); // lint: nondeterministic(telemetry only)\n    let u = Instant::now(); // lint: allow(TL007)\n    let v = Instant::now();\n}\n",
        );
        let facts = &fns[0].facts;
        assert!(facts[0].waived);
        assert!(facts[1].allows.iter().any(|a| a == "TL007"));
        assert!(!facts[2].waived && facts[2].allows.is_empty());
    }

    #[test]
    fn hotpath_allocation_shapes_are_found() {
        let fns = extract_src(
            "fn f() {\n    let a = Vec::with_capacity(8);\n    let b = vec![0u8; 4];\n    let c = xs.to_vec();\n    let d = xs.iter().collect::<Vec<u32>>();\n    let e = cfg.clone();\n    let g = format!(\"x\");\n    let h = Box::new(0);\n    let i = String::from(\"y\");\n}\n",
        );
        let whats: Vec<&str> = fns[0]
            .hfacts
            .iter()
            .filter(|h| h.kind == HFactKind::HeapAlloc)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(
            whats,
            vec![
                "Vec::with_capacity()",
                "vec![..]",
                ".to_vec()",
                ".collect()",
                ".clone()",
                "format![..]",
                "Box::new()",
                "String::from()",
            ]
        );
    }

    #[test]
    fn hotpath_blocking_shapes_are_found() {
        let fns = extract_src(
            "fn f() {\n    let g = m.lock().unwrap();\n    let v = rx.recv().unwrap();\n    thread::sleep(d);\n    let s = fs::read_to_string(p);\n    let file = File::open(p);\n    let r = lk.read();\n    let n = stream.read(&mut buf);\n}\n",
        );
        let whats: Vec<&str> = fns[0]
            .hfacts
            .iter()
            .filter(|h| h.kind == HFactKind::Blocking)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(
            whats,
            vec![
                ".lock()",
                ".recv()",
                "thread::sleep",
                "fs::read_to_string()",
                "File::open()",
                ".read()",
            ],
            "buffered .read(&mut buf) is io, not a lock — excluded"
        );
    }

    #[test]
    fn hotpath_panic_shapes_are_found_and_deduped() {
        let fns = extract_src(
            "fn f(xs: &[f32], out: &mut [f32], n: usize, d: usize) {\n    out[0] = xs[1];\n    dst.copy_from_slice(src);\n    let q = n / d;\n    let r = n % 4;\n    let s = 1.0 / scale;\n    let half = n / 2;\n}\n",
        );
        let whats: Vec<&str> = fns[0]
            .hfacts
            .iter()
            .filter(|h| h.kind == HFactKind::PanicCapable)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(
            whats,
            vec![
                "out[..] indexing",
                ".copy_from_slice(..)",
                "/ d (integer division)",
            ],
            "out[0]=xs[1] dedupes to one site; literal and float divisors are fine"
        );
    }

    #[test]
    fn hotpath_excludes_non_indexing_brackets() {
        let fns = extract_src(
            "fn f(v: &mut [f32]) {\n    let a: [f32; 2] = [0.0, 0.0];\n    for x in [1, 2] { let _ = x; }\n    let s = &v[..];\n}\n",
        );
        let panics: Vec<&str> = fns[0]
            .hfacts
            .iter()
            .filter(|h| h.kind == HFactKind::PanicCapable)
            .map(|h| h.what.as_str())
            .collect();
        assert_eq!(
            panics,
            vec!["v[..] indexing"],
            "types, array literals, and for-in arrays are not index expressions"
        );
    }

    #[test]
    fn hotpath_waivers_map_to_their_kinds() {
        let fns = extract_src(
            "fn f() {\n    let a = xs.to_vec(); // lint: alloc(one-time warmup)\n    let b = xs.to_vec();\n    let c = xs[0]; // lint: panicfree(len checked above)\n    let d = xs[1]; // lint: alloc(wrong waiver kind)\n    let g = m.lock(); // lint: allow(TL015)\n}\n",
        );
        let h = &fns[0].hfacts;
        assert!(h[0].waived, "alloc(reason) waives HeapAlloc");
        assert!(!h[1].waived);
        assert!(h[2].waived, "panicfree(reason) waives PanicCapable");
        assert!(!h[3].waived, "alloc(reason) does not waive PanicCapable");
        assert!(!h[4].waived, "Blocking has no reasoned waiver");
        assert!(h[4].allows.iter().any(|a| a == "TL015"));
    }
}
