//! Baseline bookkeeping: the ratchet that lets the lint gate a codebase
//! with pre-existing violations.
//!
//! `lint-baseline.txt` records, per `(rule, file)`, how many violations are
//! tolerated. `--check` fails only when a count *exceeds* its baseline (new
//! violations); counts below baseline are reported as ratchet opportunities.
//! `--update-baseline` rewrites the file from the current tree, which is how
//! burn-down work locks in its progress.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Rule, Violation};

/// Violation counts keyed by `(rule code, workspace-relative file)`.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates raw violations into baseline counts.
pub fn count(violations: &[Violation]) -> Counts {
    let mut counts = Counts::new();
    for v in violations {
        *counts
            .entry((v.rule.code().to_string(), v.file.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Renders counts in the checked-in baseline format.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# TAGLETS lint baseline: tolerated violation counts per (rule, file).\n\
         # Regenerate with `cargo run -p taglets-lint -- --update-baseline`\n\
         # (or any `--check` run with UPDATE_BASELINE=1 in the environment).\n\
         # `--check` fails only when a count exceeds its entry here.\n",
    );
    for ((rule, file), n) in counts {
        let _ = writeln!(out, "{rule} {file} {n}");
    }
    out
}

/// Parses the baseline format; returns `Err` with a message on bad lines.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, file, n) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(f), Some(n), None) => (r, f, n),
            _ => {
                return Err(format!(
                    "baseline line {}: expected `RULE FILE COUNT`",
                    idx + 1
                ))
            }
        };
        if Rule::from_code(rule).is_none() {
            return Err(format!("baseline line {}: unknown rule `{rule}`", idx + 1));
        }
        let n: usize = n
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{n}`", idx + 1))?;
        counts.insert((rule.to_string(), file.to_string()), n);
    }
    Ok(counts)
}

/// The outcome of diffing current counts against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// `(rule, file, current, baseline)` where current > baseline.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// `(rule, file, current, baseline)` where current < baseline.
    pub improvements: Vec<(String, String, usize, usize)>,
}

/// Compares current counts to the baseline.
pub fn diff(current: &Counts, baseline: &Counts) -> Diff {
    let mut d = Diff::default();
    for ((rule, file), &n) in current {
        let base = baseline
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if n > base {
            d.regressions.push((rule.clone(), file.clone(), n, base));
        } else if n < base {
            d.improvements.push((rule.clone(), file.clone(), n, base));
        }
    }
    for ((rule, file), &base) in baseline {
        if base > 0 && !current.contains_key(&(rule.clone(), file.clone())) {
            d.improvements.push((rule.clone(), file.clone(), 0, base));
        }
    }
    d
}

/// True when a regression involves a non-advisory rule (fails `--check`).
pub fn has_blocking_regression(d: &Diff) -> bool {
    d.regressions.iter().any(|(rule, ..)| {
        Rule::from_code(rule)
            .map(|r| !r.is_advisory())
            .unwrap_or(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, file: &str, line: usize) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            excerpt: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let violations = vec![
            v(Rule::Tl001, "crates/a/src/lib.rs", 3),
            v(Rule::Tl001, "crates/a/src/lib.rs", 9),
            v(Rule::Tl002, "crates/b/src/lib.rs", 1),
        ];
        let counts = count(&violations);
        let parsed = parse(&render(&counts)).expect("round trip");
        assert_eq!(parsed, counts);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("TL001 missing-count\n").is_err());
        assert!(parse("TL999 file.rs 1\n").is_err());
        assert!(parse("TL001 file.rs not-a-number\n").is_err());
        assert!(parse("# comment only\n\n")
            .map(|c| c.is_empty())
            .unwrap_or(false));
    }

    #[test]
    fn diff_classifies_regressions_and_improvements() {
        let current = count(&[v(Rule::Tl001, "a.rs", 1), v(Rule::Tl001, "a.rs", 2)]);
        let baseline = count(&[v(Rule::Tl001, "a.rs", 1), v(Rule::Tl002, "b.rs", 1)]);
        let d = diff(&current, &baseline);
        assert_eq!(d.regressions, vec![("TL001".into(), "a.rs".into(), 2, 1)]);
        assert_eq!(d.improvements, vec![("TL002".into(), "b.rs".into(), 0, 1)]);
        assert!(has_blocking_regression(&d));
    }

    #[test]
    fn advisory_regressions_do_not_block() {
        let current = count(&[v(Rule::Tl005, "crates/tensor/src/lib.rs", 1)]);
        let d = diff(&current, &Counts::new());
        assert!(!d.regressions.is_empty());
        assert!(!has_blocking_regression(&d));
    }
}
