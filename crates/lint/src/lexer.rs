//! A token-level lexer for Rust source.
//!
//! The line scanner in [`crate::scanner`] is enough for substring rules, but
//! the determinism taint analysis (TL007–TL009) and the float-comparison
//! rule (TL004) need real tokens: raw strings with hash fences, nested block
//! comments, byte strings, `'a'` char literals vs `'a` lifetimes, and float
//! literals vs `..` range punctuation are all cases where a line regex
//! misclassifies. This lexer produces a flat stream of spanned tokens with
//! comments and whitespace removed; literal *contents* are dropped (a string
//! is one [`Tok::Str`] token), so downstream passes can never match inside
//! them.
//!
//! The lexer is lossy in exactly the ways the analyses can afford: it does
//! not preserve literal values or comment text (the scanner still owns
//! directive parsing), and it treats keywords as ordinary identifiers.

/// A lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `impl`, `HashMap`, ...). Raw
    /// identifiers (`r#match`) are unescaped to their plain name.
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// A character or byte literal (`'x'`, `b'\n'`); contents dropped.
    Char,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`);
    /// contents dropped.
    Str,
    /// An integer literal (`42`, `0xff`, `1_000u64`, tuple index `0`).
    Int,
    /// A float literal (`1.5`, `1.`, `1e3`, `2f32`).
    Float,
    /// An operator or separator, multi-character forms joined (`::`, `->`,
    /// `==`, `..=`, ...).
    Punct(&'static str),
    /// An opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]`, or `}`.
    Close(char),
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload, for identifiers/lifetimes).
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
}

impl Token {
    /// The identifier name, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, Tok::Punct(s) if *s == p)
    }
}

/// Multi-character operators, longest first so joining is greedy.
const JOINED: [&str; 25] = [
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "=",
];

/// Single-character operators that are not in [`JOINED`]'s first column.
const SINGLES: &str = "+-*/%^&|!<>=.,;:#?@~$";

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lexes `source` into a token stream. Unterminated literals or comments end
/// at end-of-file; the lexer never fails.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out: Vec<Token> = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // String-ish prefixes: r"", r#""#, b"", br"", b'', and raw idents.
        if c == 'r' || c == 'b' {
            if let Some(tok) = lex_prefixed(&mut cur) {
                out.push(Token {
                    kind: tok,
                    line,
                    col,
                });
                continue;
            }
        }
        if c == '"' {
            cur.bump();
            consume_string_body(&mut cur);
            out.push(Token {
                kind: Tok::Str,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            let kind = lex_quote(&mut cur);
            out.push(Token { kind, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            let after_dot = out.last().map(|t| t.is_punct(".")).unwrap_or(false);
            let kind = lex_number(&mut cur, after_dot);
            out.push(Token { kind, line, col });
            continue;
        }
        if is_ident_start(c) {
            let name = lex_ident(&mut cur);
            out.push(Token {
                kind: Tok::Ident(name),
                line,
                col,
            });
            continue;
        }
        match c {
            '(' | '[' | '{' => {
                cur.bump();
                out.push(Token {
                    kind: Tok::Open(c),
                    line,
                    col,
                });
            }
            ')' | ']' | '}' => {
                cur.bump();
                out.push(Token {
                    kind: Tok::Close(c),
                    line,
                    col,
                });
            }
            _ => {
                // `.` followed by a digit could open a float only at the
                // start of an expression; Rust itself requires a leading
                // digit, so treat `.` uniformly as punctuation.
                let mut matched = None;
                for op in JOINED {
                    let len = op.chars().count();
                    if (0..len).all(|k| cur.peek(k) == op.chars().nth(k)) {
                        matched = Some((op, len));
                        break;
                    }
                }
                if let Some((op, len)) = matched {
                    cur.bump_n(len);
                    out.push(Token {
                        kind: Tok::Punct(op),
                        line,
                        col,
                    });
                } else if SINGLES.contains(c) {
                    cur.bump();
                    out.push(Token {
                        kind: Tok::Punct(single_punct(c)),
                        line,
                        col,
                    });
                } else {
                    // Unknown character (unlikely in valid Rust): skip.
                    cur.bump();
                }
            }
        }
    }
    out
}

/// Interns single-character punctuation as `&'static str`.
fn single_punct(c: char) -> &'static str {
    match c {
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '^' => "^",
        '&' => "&",
        '|' => "|",
        '!' => "!",
        '<' => "<",
        '>' => ">",
        '=' => "=",
        '.' => ".",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '#' => "#",
        '?' => "?",
        '@' => "@",
        '~' => "~",
        _ => "$",
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// Handles `r`/`b`-prefixed literals and raw identifiers. Returns `None`
/// when the `r`/`b` is just the start of an ordinary identifier.
fn lex_prefixed(cur: &mut Cursor) -> Option<Tok> {
    let c = cur.peek(0)?;
    if c == 'b' {
        match cur.peek(1) {
            Some('"') => {
                cur.bump_n(2);
                consume_string_body(cur);
                return Some(Tok::Str);
            }
            Some('\'') => {
                cur.bump(); // the `b`; lex_quote consumes from the quote
                cur.bump(); // the `'`
                consume_char_body(cur);
                return Some(Tok::Char);
            }
            Some('r') => {
                let mut j = 2;
                let mut hashes = 0;
                while cur.peek(j) == Some('#') {
                    hashes += 1;
                    j += 1;
                }
                if cur.peek(j) == Some('"') {
                    cur.bump_n(j + 1);
                    consume_raw_string_body(cur, hashes);
                    return Some(Tok::Str);
                }
                return None;
            }
            _ => return None,
        }
    }
    // c == 'r'
    let mut j = 1;
    let mut hashes = 0;
    while cur.peek(j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    if cur.peek(j) == Some('"') {
        cur.bump_n(j + 1);
        consume_raw_string_body(cur, hashes);
        return Some(Tok::Str);
    }
    if hashes == 1 && cur.peek(j).map(is_ident_start).unwrap_or(false) {
        // Raw identifier r#match — strip the prefix and lex the name.
        cur.bump_n(2);
        let name = lex_ident(cur);
        return Some(Tok::Ident(name));
    }
    None
}

/// Consumes a double-quoted string body (opening quote already consumed),
/// honouring `\` escapes; strings may span lines.
fn consume_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body terminated by `"` + `hashes` `#`s.
fn consume_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
            cur.bump_n(hashes);
            break;
        }
    }
}

/// Consumes a char-literal body (opening quote already consumed).
fn consume_char_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// At a `'`: distinguishes char literals from lifetimes.
///
/// * `'\…'` → char (escape).
/// * `'x'` (ident-ish char then `'`) → char.
/// * `'a`, `'static`, `'_` without a closing quote → lifetime.
/// * anything else (`'('`, `'.'`, ...) → char.
fn lex_quote(cur: &mut Cursor) -> Tok {
    cur.bump(); // the opening quote
    match cur.peek(0) {
        Some('\\') => {
            consume_char_body(cur);
            Tok::Char
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            if cur.peek(1) == Some('\'') {
                cur.bump_n(2);
                Tok::Char
            } else {
                let name = lex_ident(cur);
                Tok::Lifetime(name)
            }
        }
        Some(_) => {
            consume_char_body(cur);
            Tok::Char
        }
        None => Tok::Char,
    }
}

/// Lexes a number starting at a digit. `after_dot` marks tuple-index
/// position (`pair.0.1`): there the token is always a plain integer and a
/// following `.` starts another field access, never a float.
fn lex_number(cur: &mut Cursor, after_dot: bool) -> Tok {
    // Radix prefixes are always integers (hex `e` is a digit, not exponent).
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')) {
        cur.bump_n(2);
        while cur
            .peek(0)
            .map(|c| c.is_ascii_hexdigit() || c == '_')
            .unwrap_or(false)
        {
            cur.bump();
        }
        consume_suffix(cur);
        return Tok::Int;
    }
    consume_digits(cur);
    if after_dot {
        // Tuple index: `x.0.1` is Int(0) `.` Int(1), never a float.
        return Tok::Int;
    }
    let mut float = false;
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            // `1..2` is a range; `1.max()` is a method call on an integer.
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            // `1.5`, `1.`, `1.)` — all floats.
            _ => {
                float = true;
                cur.bump();
                consume_digits(cur);
            }
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (s1, s2) = (cur.peek(1), cur.peek(2));
        let exp = match s1 {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => s2.map(|c| c.is_ascii_digit()).unwrap_or(false),
            _ => false,
        };
        if exp {
            float = true;
            cur.bump(); // e
            if matches!(cur.peek(0), Some('+' | '-')) {
                cur.bump();
            }
            consume_digits(cur);
        }
    }
    let suffix = consume_suffix(cur);
    if suffix.starts_with('f') {
        float = true;
    }
    if float {
        Tok::Float
    } else {
        Tok::Int
    }
}

fn consume_digits(cur: &mut Cursor) {
    while cur
        .peek(0)
        .map(|c| c.is_ascii_digit() || c == '_')
        .unwrap_or(false)
    {
        cur.bump();
    }
}

/// Consumes a literal suffix (`u32`, `f64`, `usize`, ...) and returns it.
fn consume_suffix(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// Renders a token stream in the compact one-token-per-line format used by
/// the golden-file tests: `LINE:COL KIND[ PAYLOAD]`.
pub fn dump(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let desc = match &t.kind {
            Tok::Ident(s) => format!("Ident {s}"),
            Tok::Lifetime(s) => format!("Lifetime {s}"),
            Tok::Char => "Char".to_string(),
            Tok::Str => "Str".to_string(),
            Tok::Int => "Int".to_string(),
            Tok::Float => "Float".to_string(),
            Tok::Punct(p) => format!("Punct {p}"),
            Tok::Open(c) => format!("Open {c}"),
            Tok::Close(c) => format!("Close {c}"),
        };
        out.push_str(&format!("{}:{} {}\n", t.line, t.col, desc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("fn f(x: u8) -> u8 { x }"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::Open('('),
                Tok::Ident("x".into()),
                Tok::Punct(":"),
                Tok::Ident("u8".into()),
                Tok::Close(')'),
                Tok::Punct("->"),
                Tok::Ident("u8".into()),
                Tok::Open('{'),
                Tok::Ident("x".into()),
                Tok::Close('}'),
            ]
        );
    }

    #[test]
    fn float_vs_range() {
        assert_eq!(kinds("1.5"), vec![Tok::Float]);
        assert_eq!(kinds("1."), vec![Tok::Float]);
        assert_eq!(kinds("1e3"), vec![Tok::Float]);
        assert_eq!(kinds("1.5e-3"), vec![Tok::Float]);
        assert_eq!(kinds("2f32"), vec![Tok::Float]);
        assert_eq!(kinds("1..2"), vec![Tok::Int, Tok::Punct(".."), Tok::Int]);
        assert_eq!(kinds("1..=2"), vec![Tok::Int, Tok::Punct("..="), Tok::Int]);
        assert_eq!(kinds("0xff"), vec![Tok::Int]);
        assert_eq!(kinds("1_000u64"), vec![Tok::Int]);
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        assert_eq!(
            kinds("pair.0.1"),
            vec![
                Tok::Ident("pair".into()),
                Tok::Punct("."),
                Tok::Int,
                Tok::Punct("."),
                Tok::Int,
            ]
        );
    }

    #[test]
    fn integer_method_call_is_not_a_float() {
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                Tok::Int,
                Tok::Punct("."),
                Tok::Ident("max".into()),
                Tok::Open('('),
                Tok::Int,
                Tok::Close(')'),
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![Tok::Char]);
        assert_eq!(kinds("'a"), vec![Tok::Lifetime("a".into())]);
        assert_eq!(kinds("'static"), vec![Tok::Lifetime("static".into())]);
        assert_eq!(kinds("'\\''"), vec![Tok::Char]);
        assert_eq!(kinds("b'x'"), vec![Tok::Char]);
        assert_eq!(
            kinds("<'a, 'b>"),
            vec![
                Tok::Punct("<"),
                Tok::Lifetime("a".into()),
                Tok::Punct(","),
                Tok::Lifetime("b".into()),
                Tok::Punct(">"),
            ]
        );
    }

    #[test]
    fn string_flavours_collapse_to_one_token() {
        assert_eq!(kinds("\"a\\\"b\""), vec![Tok::Str]);
        assert_eq!(kinds("r\"no escape\""), vec![Tok::Str]);
        assert_eq!(kinds("r#\"with \" quote\"#"), vec![Tok::Str]);
        assert_eq!(kinds("br##\"double \"# fence\"##"), vec![Tok::Str]);
        assert_eq!(kinds("b\"bytes\""), vec![Tok::Str]);
        // Nothing inside a literal leaks out as tokens.
        assert_eq!(
            kinds("f(r#\"Instant::now() 1.5\"#)"),
            vec![
                Tok::Ident("f".into()),
                Tok::Open('('),
                Tok::Str,
                Tok::Close(')'),
            ]
        );
    }

    #[test]
    fn raw_ident_is_unescaped() {
        assert_eq!(kinds("r#match"), vec![Tok::Ident("match".into())]);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        assert_eq!(
            kinds("a /* x /* y */ z */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn spans_are_one_based() {
        let toks = lex("x\n  y");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
