//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`rngs::mock::StepRng`], and
//! [`seq::SliceRandom`]. Everything is implemented on top of `std` only.
//!
//! Streams are deterministic under a fixed seed (the workspace's tests and
//! benches rely on that) but are **not** bit-compatible with upstream
//! `rand`'s ChaCha-based `StdRng`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (low half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using 24 high bits, like upstream `rand`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using 53 high bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform distribution over a caller-provided range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                // Widening multiply keeps the modulo bias negligible.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $ty
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let u = <$ty as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (`f32`/`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 seed expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: well-distributed 64-bit blocks from a counter.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna).
    ///
    /// Small, fast, and statistically solid — a stand-in for upstream's
    /// ChaCha12-based `StdRng` (streams differ, determinism semantics match).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Yields `initial`, `initial + increment`, ... — no randomness at all.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a counter-style generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    state: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.state;
                self.state = self.state.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    //! Slice helpers mirroring `rand::seq`.

    use super::Rng;

    /// Random slice operations (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_f32_is_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(5, 2);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }

    #[test]
    fn works_through_unsized_generic_plumbing() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
