//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, numeric-range and
//! tuple strategies, [`collection::vec`], [`Strategy::prop_map`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Semantics: each test body runs `ProptestConfig::cases` times with inputs
//! sampled from its strategies. Sampling is deterministic — seeded from the
//! test name and case index — so failures reproduce across runs. There is no
//! shrinking; a failure reports the case number and message instead of a
//! minimised input.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic sampling RNG (self-contained xoshiro256++)
// ---------------------------------------------------------------------

/// The RNG handed to strategies while generating a test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn uniform_u64(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy {}..{}", self.start, self.end);
                (self.start as i128 + rng.uniform_u64(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.uniform_u64(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + rng.unit_f64() as $ty * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.uniform_u64(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (used by the assertion macros).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Drives one `proptest!` test: samples inputs and runs `case` until
/// `config.cases` successes. Panics (failing the enclosing `#[test]`) on the
/// first assertion failure.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Stable seed per test name so failures reproduce run-to-run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ case_index);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case_index} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
        case_index += 1;
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests: `fn name(arg in strategy, ...) { body }` blocks,
/// each expanded to a `#[test]` that samples inputs and runs the body
/// repeatedly.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@blocks ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@blocks ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    (@blocks ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` != `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The imports test files pull in with `use proptest::prelude::*`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};

    pub mod prop {
        //! Mirror of upstream's `prop` re-export module.

        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = Strategy::sample(&(0usize..4, 10i64..=12), &mut rng);
            assert!(a < 4 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = prop::collection::vec(0usize..5, 2..6);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = prop::collection::vec(0usize..5, 7);
        assert_eq!(Strategy::sample(&exact, &mut rng).len(), 7);
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_passes(a in 0usize..100, b in 0usize..100) {
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_rejects_and_retries(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn failing_case_panics_with_case_number() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(8), "always_fails", |_| {
                Err(TestCaseError::fail("boom".into()))
            });
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("panic payload");
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }
}
