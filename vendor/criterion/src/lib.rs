//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so the workspace vendors the
//! slice of criterion it uses: [`Criterion`], [`criterion_group!`] /
//! [`criterion_main!`], benchmark groups, and `Bencher::iter` /
//! `Bencher::iter_batched`. Timing is a simple warmup + fixed-sample median
//! over `std::time::Instant`; there is no statistical analysis, HTML report,
//! or command-line parsing.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. All variants behave identically
/// here: setup runs once per measured call, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median elapsed time per iteration, filled in by `iter`/`iter_batched`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call.
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Measures `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(t) => println!("bench {id:<48} median {t:>12.3?} ({samples} samples)"),
        None => println!("bench {id:<48} (no measurement recorded)"),
    }
}

/// Declares a benchmark group, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = c; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_measures_iter_and_iter_batched() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_function("iter", |b| b.iter(|| black_box(2) * 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
