//! End-to-end integration tests of the TAGLETS system against the paper's
//! headline claims, on a reduced synthetic world.

mod common;

use taglets::nn::Module as _;
use taglets::{
    BackboneKind, PruneLevel, TagletsConfig, TagletsSystem, TransferModule, ZslKgModule,
};

fn system(backbone: BackboneKind) -> TagletsSystem<'static> {
    let w = common::world();
    TagletsSystem::prepare(&w.scads, &w.zoo, TagletsConfig::for_backbone(backbone))
}

#[test]
fn taglets_beats_fine_tuning_at_one_shot_under_domain_shift() {
    // The paper's headline: with one labeled example per class, exploiting
    // auxiliary + unlabeled data beats plain fine-tuning by a wide margin.
    let w = common::world();
    let task = common::task("office_home_clipart");
    let split = task.split(0, 1);
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let run = sys
        .run(task, &split, PruneLevel::NoPruning, 0)
        .expect("run");
    let taglets_acc = run.end_model.accuracy(&split.test_x, &split.test_y);

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let baseline = taglets::baselines::fine_tune(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        task.num_classes(),
        &Default::default(),
        &mut rng,
    );
    let baseline_acc = baseline.accuracy(&split.test_x, &split.test_y);
    assert!(
        taglets_acc > baseline_acc + 0.10,
        "TAGLETS ({taglets_acc}) must clearly beat fine-tuning ({baseline_acc}) at 1-shot"
    );
}

#[test]
fn run_produces_four_taglets_and_simplex_pseudo_labels() {
    let task = common::task("flickr_materials");
    let split = task.split(0, 5);
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let run = sys
        .run(task, &split, PruneLevel::NoPruning, 0)
        .expect("run");
    assert_eq!(run.taglets.len(), 4);
    let names: Vec<&str> = run.taglets.iter().map(|t| t.name()).collect();
    assert_eq!(names, ["transfer", "multitask", "fixmatch", "zsl-kg"]);
    assert_eq!(run.pseudo_labels.rows(), run.unlabeled_used.rows());
    for row in run.pseudo_labels.rows_iter() {
        let sum: f32 = row.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-4,
            "pseudo labels must stay on the simplex"
        );
    }
}

#[test]
fn pruning_does_not_improve_the_selected_data_similarity() {
    // Selection must degrade monotonically in graph similarity terms.
    let w = common::world();
    let task = common::task("grocery_store");
    let concepts: Vec<_> = task
        .aligned_concepts()
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let mean_sim = |prune| {
        let mut total = 0.0;
        let mut n = 0;
        for &c in &concepts {
            for (_, s) in w.scads.related_concepts(c, 3, prune, &concepts) {
                total += s;
                n += 1;
            }
        }
        total / n as f32
    };
    let none = mean_sim(PruneLevel::NoPruning);
    let l0 = mean_sim(PruneLevel::Level0);
    let l1 = mean_sim(PruneLevel::Level1);
    assert!(
        none >= l0,
        "prune-0 must not increase similarity ({none} vs {l0})"
    );
    assert!(
        l0 >= l1,
        "prune-1 must not increase similarity ({l0} vs {l1})"
    );
}

#[test]
fn end_model_is_servable_and_single_network() {
    let task = common::task("flickr_materials");
    let split = task.split(0, 5);
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let run = sys
        .run(task, &split, PruneLevel::NoPruning, 0)
        .expect("run");
    let model = &run.end_model;
    assert_eq!(model.num_classes(), task.num_classes());
    assert_eq!(model.input_dim(), common::world().universe.image_dim());
    // The servable model is exactly one backbone + head — the same
    // parameter count as a fine-tuned classifier, independent of how many
    // taglets produced it.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let ft = taglets::baselines::fine_tune(
        &common::world().zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        task.num_classes(),
        &Default::default(),
        &mut rng,
    );
    assert_eq!(model.num_parameters(), ft.num_scalars());
}

#[test]
fn module_ablation_changes_the_ensemble() {
    let task = common::task("flickr_materials");
    let split = task.split(0, 1);
    let w = common::world();
    let full = system(BackboneKind::ResNet50ImageNet1k);
    let zslkg = full.zslkg().clone();
    let ablated = TagletsSystem::prepare_with_zslkg(
        &w.scads,
        &w.zoo,
        TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k),
        zslkg,
    )
    .without_module(TransferModule::NAME);
    assert_eq!(ablated.active_module_names().len(), 3);
    let run = ablated
        .run(task, &split, PruneLevel::NoPruning, 0)
        .expect("run");
    assert_eq!(run.taglets.len(), 3);
    assert!(run.taglet(TransferModule::NAME).is_none());
    assert!(run.taglet(ZslKgModule::NAME).is_some());
}

#[test]
fn zsl_kg_taglet_is_invariant_to_shots() {
    // The ZSL module never sees labeled data, so its predictions cannot
    // depend on the shot count (Fig. 4's flat lines).
    let task = common::task("flickr_materials");
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let split1 = task.split(0, 1);
    let split5 = task.split(0, 5);
    let run1 = sys
        .run(task, &split1, PruneLevel::NoPruning, 0)
        .expect("run");
    let run5 = sys
        .run(task, &split5, PruneLevel::NoPruning, 0)
        .expect("run");
    let acc1 = run1
        .taglet("zsl-kg")
        .unwrap()
        .accuracy(&split1.test_x, &split1.test_y);
    let acc5 = run5
        .taglet("zsl-kg")
        .unwrap()
        .accuracy(&split5.test_x, &split5.test_y);
    // Same predetermined? test sets differ only through the split shots; the
    // grocery test is fixed but FMD's test depends only on split seed, which
    // is equal here, so the test sets are identical.
    assert_eq!(split1.test_x, split5.test_x);
    assert!(
        (acc1 - acc5).abs() < 1e-6,
        "zsl-kg must be shot-invariant: {acc1} vs {acc5}"
    );
}

#[test]
fn runs_are_deterministic_given_the_same_seed() {
    let task = common::task("flickr_materials");
    let split = task.split(0, 1);
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let a = sys
        .run(task, &split, PruneLevel::NoPruning, 7)
        .expect("run");
    let b = sys
        .run(task, &split, PruneLevel::NoPruning, 7)
        .expect("run");
    assert_eq!(
        a.end_model.predict(&split.test_x),
        b.end_model.predict(&split.test_x),
        "same training seed must reproduce the same end model"
    );
    let c = sys
        .run(task, &split, PruneLevel::NoPruning, 8)
        .expect("run");
    // Different seed: same API, (almost surely) different model.
    assert_ne!(
        a.end_model.predict_proba(&split.test_x).data(),
        c.end_model.predict_proba(&split.test_x).data()
    );
}

#[test]
fn grocery_extension_is_isolated_to_the_run() {
    let w = common::world();
    let task = common::task("grocery_store");
    let split = task.split(0, 1);
    assert!(w.scads.graph().find("oatghurt").is_none());
    let sys = system(BackboneKind::ResNet50ImageNet1k);
    let run = sys
        .run(task, &split, PruneLevel::NoPruning, 0)
        .expect("run");
    assert!(
        w.scads.graph().find("oatghurt").is_none(),
        "shared SCADS must stay clean"
    );
    assert_eq!(run.end_model.num_classes(), 42);
}
