//! Property-based tests on the multi-replica router's contract (ISSUE 9):
//!
//! a. every submitted request is answered exactly once or accounted shed —
//!    ids are slot indices, answers never duplicate, per-tenant and global
//!    counters balance, and the same stream replays byte-identically,
//! b. a 1-replica router with no quota is **bitwise** identical to the bare
//!    [`ServingEngine`] — responses and telemetry both,
//! c. consistent-hash dispatch is a pure function of the input row —
//!    stable across router instances and across whole runs,
//! d. a tenant that stays within its quota is fully isolated from a
//!    flooding neighbor: never quota-shed, never capacity-shed,
//! e. every answered response carries probabilities bitwise equal to the
//!    single-request [`ServableModel::predict_proba`] path.
//!
//! Each property replays a randomized multi-tenant stream through a
//! randomized [`RouteConfig`] via the deterministic [`Router::run`] driver.
//! The vendored proptest derives its seed from the test name, so runs are
//! reproducible without any environment setup. `scripts/check.sh` runs the
//! suite twice — serially and under `TAGLETS_THREADS=4` — to pin the
//! replica engines' worker-count independence.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use taglets::nn::Classifier;
use taglets::tensor::Tensor;
use taglets::{
    Concurrency, DispatchPolicy, InferencePath, RouteConfig, RoutedRequest, Router, ServableModel,
    ServeConfig, ServingEngine, TimedRequest, VirtualClock,
};

const INPUT_DIM: usize = 5;
const NUM_CLASSES: usize = 4;

fn model() -> ServableModel {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    ServableModel::new(Classifier::from_dims(
        &[INPUT_DIM, 12, 8],
        NUM_CLASSES,
        0.0,
        &mut rng,
    ))
}

/// A randomized multi-tenant stream: `n` requests at bursty arrival times
/// over `tenants` tenants, with roughly `dup_pct`% of them replaying an
/// earlier request's exact input (so replica caches see genuine hits and
/// consistent-hash affinity matters).
fn stream(n: usize, tenants: u32, seed: u64, dup_pct: u8) -> Vec<RoutedRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fresh: Vec<Vec<f32>> = (0..n)
        .map(|_| Tensor::randn(&[1, INPUT_DIM], 1.0, &mut rng).into_vec())
        .collect();
    let gaps = Tensor::randn(&[1, n.max(1)], 1.0, &mut rng).into_vec();
    let mut t = 0u64;
    let mut out: Vec<RoutedRequest> = Vec::with_capacity(n);
    for i in 0..n {
        let g = (gaps[i].abs() * 100.0) as u64;
        t += if gaps[i] > 0.0 { g } else { 0 };
        let dup = i > 0 && (gaps[i] * 977.0).abs() as u64 % 100 < dup_pct as u64;
        let input = if dup {
            out[i / 2].input.clone()
        } else {
            fresh[i].clone()
        };
        let tenant = (gaps[i] * 31.0).abs() as u32 % tenants.max(1);
        out.push(RoutedRequest::new(t, tenant, input));
    }
    out
}

fn route_config(
    replicas: usize,
    policy: DispatchPolicy,
    quota: Option<usize>,
    max_batch: usize,
    max_delay_nanos: u64,
    queue_cap: usize,
    cache_capacity: usize,
) -> RouteConfig {
    RouteConfig {
        replicas,
        policy,
        tenant_quota: quota,
        serve: ServeConfig {
            max_batch,
            max_delay_nanos,
            queue_cap,
            cache_capacity,
            concurrency: Concurrency::Serial,
            path: InferencePath::F32,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    // Property (a): answered exactly once, counters balance at both the
    // fleet and per-tenant level, and the replay is deterministic.
    #[test]
    fn every_request_is_answered_once_or_accounted_shed(
        n in 1usize..80,
        tenants in 1u32..5,
        seed in 0u64..1_000_000,
        replicas in 1usize..5,
        policy_sel in 0usize..2,
        quota_sel in 0usize..3,
        max_batch in 1usize..12,
        delay in 0u64..400,
        queue_cap in 1usize..16,
    ) {
        let policy = [DispatchPolicy::ConsistentHash, DispatchPolicy::LeastLoaded][policy_sel];
        let quota = [None, Some(2), Some(6)][quota_sel];
        let m = model();
        let requests = stream(n, tenants, seed, 30);
        let cfg = route_config(replicas, policy, quota, max_batch, delay, queue_cap, 16);
        let run = Router::run(&m, cfg.clone(), &requests).unwrap();

        prop_assert_eq!(run.responses.len(), n);
        let mut seen = BTreeSet::new();
        for (slot, r) in run.responses.iter().enumerate() {
            if let Some(r) = r {
                prop_assert_eq!(r.id as usize, slot, "id is the stream index");
                prop_assert!(seen.insert(r.id), "duplicate answer for id {}", r.id);
                prop_assert_eq!(r.tenant, requests[slot].tenant);
                prop_assert!(r.replica < replicas);
                prop_assert_eq!(r.probs.len(), NUM_CLASSES);
            }
        }
        let t = &run.telemetry;
        prop_assert_eq!(seen.len() as u64, t.answered());
        prop_assert_eq!(t.submitted(), n as u64);
        prop_assert_eq!(t.answered() + t.shed(), t.submitted());
        prop_assert_eq!(t.rejected, 0);
        let none_slots = run.responses.iter().filter(|r| r.is_none()).count() as u64;
        prop_assert_eq!(none_slots, t.quota_shed + t.capacity_shed);
        // Per-tenant books balance, and sum back to the fleet totals.
        for (id, tenant) in &t.tenants {
            prop_assert_eq!(
                tenant.answered + tenant.quota_shed + tenant.capacity_shed,
                tenant.submitted,
                "tenant {} books do not balance", id
            );
            prop_assert_eq!(tenant.rejected, 0);
        }
        prop_assert_eq!(t.tenants.values().map(|x| x.quota_shed).sum::<u64>(), t.quota_shed);
        prop_assert_eq!(t.tenants.values().map(|x| x.capacity_shed).sum::<u64>(), t.capacity_shed);
        // Dispatch totals count exactly the admitted requests — which,
        // after a full run with its final drain, is exactly the answered.
        prop_assert_eq!(t.dispatched.iter().sum::<u64>(), t.answered());

        // Same stream, same config: byte-identical replay.
        let again = Router::run(&m, cfg, &requests).unwrap();
        prop_assert_eq!(&run.responses, &again.responses);
        prop_assert_eq!(&run.telemetry, &again.telemetry);
    }

    // Property (b): one replica, no quota — the router is a transparent
    // wrapper. Responses AND telemetry are bitwise those of the bare engine.
    #[test]
    fn single_replica_router_is_bitwise_the_bare_engine(
        n in 1usize..80,
        seed in 0u64..1_000_000,
        max_batch in 1usize..12,
        delay in 0u64..400,
        queue_cap in 1usize..16,
        cache_sel in 0usize..3,
    ) {
        let cache = [0usize, 8, 64][cache_sel];
        let m = model();
        let routed_stream = stream(n, 3, seed, 30);
        let timed_stream: Vec<TimedRequest> = routed_stream
            .iter()
            .map(|r| TimedRequest::new(r.at_nanos, r.input.clone()))
            .collect();
        let serve = ServeConfig {
            max_batch,
            max_delay_nanos: delay,
            queue_cap,
            cache_capacity: cache,
            concurrency: Concurrency::Serial,
            path: InferencePath::F32,
        };
        let bare = ServingEngine::run(&m, serve.clone(), &timed_stream).unwrap();
        let routed = Router::run(
            &m,
            RouteConfig {
                replicas: 1,
                policy: DispatchPolicy::ConsistentHash,
                tenant_quota: None,
                serve,
            },
            &routed_stream,
        ).unwrap();

        prop_assert_eq!(routed.responses.len(), bare.responses.len());
        for (slot, (r, b)) in routed.responses.iter().zip(&bare.responses).enumerate() {
            match (r, b) {
                (None, None) => {}
                (Some(r), Some(b)) => {
                    prop_assert_eq!(r.id, b.id);
                    prop_assert_eq!(r.replica, 0usize);
                    prop_assert_eq!(&r.probs, &b.probs, "slot {} probs diverge", slot);
                    prop_assert_eq!(r.predicted, b.predicted);
                    prop_assert_eq!(r.latency_nanos, b.latency_nanos);
                    prop_assert_eq!(r.batch_size, b.batch_size);
                    prop_assert_eq!(r.cache_hit, b.cache_hit);
                }
                _ => prop_assert!(false, "slot {} shed on one side only", slot),
            }
        }
        prop_assert_eq!(routed.telemetry.replicas.len(), 1);
        prop_assert_eq!(&routed.telemetry.replicas[0], &bare.telemetry,
            "replica telemetry must be the bare engine's, field for field");
        prop_assert_eq!(routed.telemetry.quota_shed, 0);
    }

    // Property (c): consistent-hash dispatch is a pure function of the
    // input bits — the same row lands on the same replica across router
    // instances, across calls, and inside whole runs.
    #[test]
    fn consistent_hash_dispatch_is_stable(
        n in 1usize..60,
        seed in 0u64..1_000_000,
        replicas in 1usize..5,
    ) {
        let m = model();
        let requests = stream(n, 2, seed, 40);
        let cfg = route_config(replicas, DispatchPolicy::ConsistentHash, None, 4, 200, 4096, 16);
        let clock = VirtualClock::new();
        let router_a = Router::new(&m, cfg.clone(), &clock).unwrap();
        let router_b = Router::new(&m, cfg.clone(), &clock).unwrap();
        let mut by_bits: std::collections::BTreeMap<Vec<u32>, usize> = std::collections::BTreeMap::new();
        for r in &requests {
            let target = router_a.dispatch(&r.input);
            prop_assert!(target < replicas);
            prop_assert_eq!(target, router_a.dispatch(&r.input), "dispatch must be pure");
            prop_assert_eq!(target, router_b.dispatch(&r.input),
                "dispatch must not depend on router identity");
            let bits: Vec<u32> = r.input.iter().map(|v| v.to_bits()).collect();
            if let Some(&prev) = by_bits.get(&bits) {
                prop_assert_eq!(prev, target, "same bits, different replica");
            }
            by_bits.insert(bits, target);
        }
        // A whole run honors the same mapping: every answered response sits
        // on the replica `dispatch` predicts for its input.
        let run = Router::run(&m, cfg, &requests).unwrap();
        for (slot, r) in run.responses.iter().enumerate() {
            if let Some(r) = r {
                prop_assert_eq!(r.replica, router_a.dispatch(&requests[slot].input),
                    "slot {} answered off its hash replica", slot);
            }
        }
    }

    // Property (d): quota isolation. Tenant 0 floods same-instant bursts;
    // tenant 1 sends sparse singletons with gaps longer than the batch
    // deadline, so it never holds more than one request in flight. With
    // queue_cap >= tenants * quota the fleet can always absorb every
    // within-quota request, so tenant 1 must come through untouched.
    #[test]
    fn within_quota_tenant_is_isolated_from_a_flooding_neighbor(
        bursts in 1usize..10,
        burst_size in 4usize..12,
        seed in 0u64..1_000_000,
        replicas in 1usize..5,
        quota in 1usize..4,
        max_batch in 1usize..6,
    ) {
        let m = model();
        let mut rng = StdRng::seed_from_u64(seed);
        let max_delay = 200u64;
        let mut requests: Vec<RoutedRequest> = Vec::new();
        for b in 0..bursts {
            // Tenant 1 first at this instant, then the flood: admission is
            // order-sensitive, so this is the adversarial arrangement where
            // the flood could otherwise evict the sparse tenant's slot.
            let t = b as u64 * (max_delay * 3);
            requests.push(RoutedRequest::new(
                t,
                1,
                Tensor::randn(&[1, INPUT_DIM], 1.0, &mut rng).into_vec(),
            ));
            for _ in 0..burst_size {
                requests.push(RoutedRequest::new(
                    t,
                    0,
                    Tensor::randn(&[1, INPUT_DIM], 1.0, &mut rng).into_vec(),
                ));
            }
        }
        let cfg = route_config(
            replicas,
            DispatchPolicy::ConsistentHash,
            Some(quota),
            max_batch,
            max_delay,
            2 * quota, // per-replica queues jointly cover both quotas
            0,
        );
        let run = Router::run(&m, cfg, &requests).unwrap();
        let t = &run.telemetry;
        let sparse = t.tenants.get(&1).expect("tenant 1 submitted");
        prop_assert_eq!(sparse.submitted, bursts as u64);
        prop_assert_eq!(sparse.quota_shed, 0, "tenant 1 stayed within quota");
        prop_assert_eq!(sparse.capacity_shed, 0,
            "within-quota tenant must never be capacity-shed");
        prop_assert_eq!(sparse.answered, sparse.submitted);
        // The flood really was a flood — otherwise this proves nothing.
        if burst_size > quota {
            let flood = t.tenants.get(&0).expect("tenant 0 submitted");
            prop_assert!(flood.quota_shed > 0, "flood must trip the quota gate");
        }
    }

    // Property (e): routing, batching, caching, and replica placement are
    // all invisible to the answer — probabilities are bitwise the
    // single-request path's.
    #[test]
    fn answered_probs_match_single_request_predictions(
        n in 1usize..50,
        tenants in 1u32..4,
        seed in 0u64..1_000_000,
        replicas in 1usize..5,
        policy_sel in 0usize..2,
        max_batch in 1usize..10,
        delay in 0u64..300,
    ) {
        let policy = [DispatchPolicy::ConsistentHash, DispatchPolicy::LeastLoaded][policy_sel];
        let m = model();
        let requests = stream(n, tenants, seed, 40);
        let cfg = route_config(replicas, policy, None, max_batch, delay, 4096, 32);
        let run = Router::run(&m, cfg, &requests).unwrap();
        for (slot, r) in run.responses.iter().enumerate() {
            let r = r.as_ref().expect("queue_cap 4096 admits everything");
            let x = Tensor::from_vec(requests[slot].input.clone()).reshaped(&[1, INPUT_DIM]);
            let one = m.predict_proba(&x);
            prop_assert_eq!(r.probs.as_slice(), one.row(0),
                "slot {} diverges from the single-request path", slot);
        }
    }
}

/// Deterministic non-proptest anchor used by `scripts/check.sh router`:
/// one fixed multi-tenant stream at 3 replicas, asserted identical across
/// serial and threaded replica engines (the step runs this file twice,
/// with and without `TAGLETS_THREADS=4`), with all three shed causes
/// accounted.
#[test]
fn fixed_stream_routes_identically_at_any_worker_count() {
    let m = model();
    let requests = stream(72, 3, 4321, 40);
    let cfg = route_config(3, DispatchPolicy::ConsistentHash, Some(4), 4, 150, 4, 32);
    let a = Router::run(&m, cfg.clone(), &requests).unwrap();
    let b = Router::run(&m, cfg, &requests).unwrap();
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(a.telemetry.submitted(), 72);
    assert_eq!(
        a.telemetry.answered() + a.telemetry.shed(),
        a.telemetry.submitted()
    );
    assert!(
        a.telemetry.replicas.iter().any(|r| r.cache_hits > 0),
        "fixture must exercise a replica cache"
    );
}
