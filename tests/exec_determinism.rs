//! The central guarantee of the staged execution engine: parallel module
//! training is **bitwise identical** to serial execution.
//!
//! Every module derives its RNG from `seed ^ name_hash(name)` — never from
//! scheduling order — and the executor reassembles results in module order,
//! so the concurrency knob may only change wall-clock, never outputs.

mod common;

use taglets::{BackboneKind, Concurrency, PruneLevel, TagletsConfig, TagletsRun, TagletsSystem};

fn run_with(concurrency: Concurrency) -> (TagletsRun, &'static taglets::TaskSplit) {
    static SPLIT: std::sync::OnceLock<taglets::TaskSplit> = std::sync::OnceLock::new();
    let world = common::world();
    let task = common::task("office_home_product");
    let split = SPLIT.get_or_init(|| task.split(0, 1));
    let mut config = TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k);
    config.concurrency = concurrency;
    let system = TagletsSystem::prepare(&world.scads, &world.zoo, config);
    let run = system
        .run(task, split, PruneLevel::NoPruning, 7)
        .expect("pipeline runs");
    (run, split)
}

#[test]
fn parallel_run_is_bitwise_identical_to_serial() {
    // TAGLETS_THREADS would override both knobs and collapse the comparison.
    std::env::remove_var("TAGLETS_THREADS");
    let (serial, split) = run_with(Concurrency::Serial);
    let (parallel, _) = run_with(Concurrency::Threads(4));

    assert_eq!(serial.telemetry.concurrency, Concurrency::Serial);
    assert_eq!(parallel.telemetry.concurrency, Concurrency::Threads(4));
    assert!(parallel.telemetry.workers >= 2, "parallel run must fan out");

    // Identical pseudo labels, bit for bit.
    assert_eq!(
        serial.pseudo_labels.data(),
        parallel.pseudo_labels.data(),
        "pseudo labels must not depend on concurrency"
    );

    // Identical module telemetry names, in identical (module) order.
    let names = |run: &TagletsRun| run.telemetry.module_seconds().into_iter().map(|(n, _)| n);
    assert!(
        names(&serial).eq(names(&parallel)),
        "module telemetry order must not depend on concurrency"
    );
    assert!(
        serial
            .taglets
            .iter()
            .map(|t| t.name())
            .eq(parallel.taglets.iter().map(|t| t.name())),
        "taglet order must not depend on concurrency"
    );

    // Identical per-module training curves (the RNG-derivation guarantee).
    for (s, p) in serial
        .telemetry
        .modules
        .iter()
        .zip(&parallel.telemetry.modules)
    {
        assert_eq!(
            s.report, p.report,
            "module `{}` training telemetry must not depend on concurrency",
            s.name
        );
    }

    // Identical end-model predictions on the test set.
    assert_eq!(
        serial.end_model.predict(&split.test_x),
        parallel.end_model.predict(&split.test_x),
        "end-model predictions must not depend on concurrency"
    );

    // And the stages of both runs carry the same pipeline shape.
    let stage_names =
        |run: &TagletsRun| -> Vec<&str> { run.telemetry.stages.iter().map(|s| s.name).collect() };
    assert_eq!(
        stage_names(&serial),
        vec!["select", "train_modules", "ensemble", "distill"]
    );
    assert_eq!(stage_names(&serial), stage_names(&parallel));
}
