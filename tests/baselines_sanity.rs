//! Sanity tests for the evaluation baselines: each must clearly beat chance
//! under the shared protocol, and SimCLR-lite must reproduce the small-data
//! degradation that led the paper to exclude it from the result tables.

mod common;

use rand::SeedableRng;

use taglets::baselines::{
    fine_tune, fine_tune_distilled, fixmatch_baseline, meta_pseudo_labels, simclr_lite, MplConfig,
    SimclrConfig,
};
use taglets::BackboneKind;

#[test]
fn all_table_baselines_beat_chance_at_five_shot() {
    let w = common::world();
    let task = common::task("flickr_materials");
    let split = task.split(0, 5);
    let chance = 1.0 / task.num_classes() as f32;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);

    let ft = fine_tune(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        task.num_classes(),
        &Default::default(),
        &mut rng,
    );
    assert!(ft.accuracy(&split.test_x, &split.test_y) > 3.0 * chance);

    let ftd = fine_tune_distilled(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        &split.unlabeled_x,
        task.num_classes(),
        &Default::default(),
        &Default::default(),
        &mut rng,
    );
    assert!(ftd.accuracy(&split.test_x, &split.test_y) > 3.0 * chance);

    let fm = fixmatch_baseline(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        &split.unlabeled_x,
        task.num_classes(),
        &Default::default(),
        &mut rng,
    );
    assert!(fm.accuracy(&split.test_x, &split.test_y) > 3.0 * chance);

    let mpl = meta_pseudo_labels(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        &split.unlabeled_x,
        task.num_classes(),
        &MplConfig::default(),
        &mut rng,
    );
    assert!(mpl.accuracy(&split.test_x, &split.test_y) > 3.0 * chance);
}

#[test]
fn simclr_degrades_on_small_data_as_the_paper_reports() {
    // Sec. 4.2: "the performance of SimCLRv2 deteriorates significantly when
    // trained on smaller datasets. Consequently, we do not include this
    // method in our results."
    //
    // The claim is about *small* data, so the unlabeled pool is capped here.
    // On the full synthetic pool (hundreds of rows over a 32-dim world)
    // from-scratch contrastive learning is too easy: SimCLR-lite matches or
    // even beats pretrained fine-tuning on most seeds, and this test used to
    // hinge on a dead tie. With a small pool the degradation is robust
    // (probed at caps of 16/32/64 rows across 5 seeds: SimCLR lands at
    // ~0.62–0.72 vs fine-tuning's ~0.80–0.84).
    let w = common::world();
    let task = common::task("flickr_materials");
    let split = task.split(0, 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);

    let small_pool_rows: Vec<usize> = (0..32.min(split.unlabeled_x.rows())).collect();
    let small_pool = split.unlabeled_x.gather_rows(&small_pool_rows);
    let (simclr, report) = simclr_lite(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        &small_pool,
        task.num_classes(),
        &SimclrConfig::default(),
        &mut rng,
    );
    assert!(!report.contrastive_losses.is_empty(), "pretraining ran");
    let simclr_acc = simclr.accuracy(&split.test_x, &split.test_y);

    let ft = fine_tune(
        &w.zoo,
        BackboneKind::ResNet50ImageNet1k,
        &split,
        task.num_classes(),
        &Default::default(),
        &mut rng,
    );
    let ft_acc = ft.accuracy(&split.test_x, &split.test_y);
    assert!(
        simclr_acc < ft_acc,
        "SimCLR-lite ({simclr_acc}) should underperform pretrained fine-tuning ({ft_acc}) \
         on a small unlabeled pool"
    );
}

#[test]
fn bit_backbone_dominates_resnet_for_fine_tuning_at_one_shot() {
    // The backbone axis of Tables 1–2: pretraining on all the auxiliary
    // data (BiT stand-in) gives better 1-shot transfer than the coarse
    // partial view (ResNet-50 stand-in).
    let w = common::world();
    let task = common::task("office_home_product");
    let split = task.split(0, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut acc = |backbone| {
        fine_tune(
            &w.zoo,
            backbone,
            &split,
            task.num_classes(),
            &Default::default(),
            &mut rng,
        )
        .accuracy(&split.test_x, &split.test_y)
    };
    let resnet = acc(BackboneKind::ResNet50ImageNet1k);
    let bit = acc(BackboneKind::BitImageNet21k);
    assert!(
        bit > resnet,
        "BiT ({bit}) should beat ResNet-50 ({resnet}) at 1-shot fine-tuning"
    );
}
