//! Property-based tests on the serving engine's contract (ISSUE 4):
//!
//! a. every admitted request is answered exactly once,
//! b. batched outputs are **bitwise** equal to one-at-a-time
//!    [`ServableModel::predict_proba`] — at 1, 2, and 4 workers,
//! c. caching on vs. off never changes any prediction,
//! d. `shed + answered == submitted` (no request silently lost).
//!
//! Each property replays a randomized timed request stream (with injected
//! duplicates so the cache actually fires) through a randomized
//! [`ServeConfig`] via the deterministic [`ServingEngine::run`] driver.
//! The vendored proptest derives its seed from the test name, so runs are
//! reproducible without any environment setup.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use taglets::nn::Classifier;
use taglets::tensor::Tensor;
use taglets::{
    Concurrency, InferencePath, ServableModel, ServeConfig, ServingEngine, TimedRequest,
    VirtualClock,
};

const INPUT_DIM: usize = 5;
const NUM_CLASSES: usize = 4;

fn model() -> ServableModel {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    ServableModel::new(Classifier::from_dims(
        &[INPUT_DIM, 12, 8],
        NUM_CLASSES,
        0.0,
        &mut rng,
    ))
}

/// A randomized timed stream: `n` requests at bursty arrival times, with
/// roughly `dup_pct`% of them replaying an earlier request's exact input
/// (so the prediction cache sees genuine hits).
fn stream(n: usize, seed: u64, dup_pct: u8) -> Vec<TimedRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fresh: Vec<Vec<f32>> = (0..n)
        .map(|_| Tensor::randn(&[1, INPUT_DIM], 1.0, &mut rng).into_vec())
        .collect();
    let gaps = Tensor::randn(&[1, n.max(1)], 1.0, &mut rng).into_vec();
    let mut t = 0u64;
    let mut out: Vec<TimedRequest> = Vec::with_capacity(n);
    for i in 0..n {
        // Bursts: ~half the gaps are zero, the rest up to ~300 ns.
        let g = (gaps[i].abs() * 100.0) as u64;
        t += if gaps[i] > 0.0 { g } else { 0 };
        let dup = i > 0 && (gaps[i] * 977.0).abs() as u64 % 100 < dup_pct as u64;
        let input = if dup {
            out[i / 2].input.clone()
        } else {
            fresh[i].clone()
        };
        out.push(TimedRequest::new(t, input));
    }
    out
}

fn config(
    max_batch: usize,
    max_delay_nanos: u64,
    queue_cap: usize,
    cache_capacity: usize,
    workers: usize,
) -> ServeConfig {
    ServeConfig {
        max_batch,
        max_delay_nanos,
        queue_cap,
        cache_capacity,
        concurrency: if workers <= 1 {
            Concurrency::Serial
        } else {
            Concurrency::threads(workers)
        },
        path: InferencePath::F32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    // Property (a): every admitted request answered exactly once — ids are
    // unique, cover exactly the non-shed stream slots, and ready responses
    // are never duplicated or dropped by drain.
    #[test]
    fn every_admitted_request_is_answered_exactly_once(
        n in 1usize..80,
        seed in 0u64..1_000_000,
        max_batch in 1usize..20,
        delay in 0u64..500,
        queue_cap in 1usize..32,
        cache_sel in 0usize..3,
    ) {
        let cache = [0usize, 8, 64][cache_sel];
        let m = model();
        let run = ServingEngine::run(
            &m,
            config(max_batch, delay, queue_cap, cache, 1),
            &stream(n, seed, 30),
        ).unwrap();

        prop_assert_eq!(run.responses.len(), n);
        let mut seen = BTreeSet::new();
        for (slot, r) in run.responses.iter().enumerate() {
            if let Some(r) = r {
                prop_assert_eq!(r.id as usize, slot, "id is the stream index");
                prop_assert!(seen.insert(r.id), "duplicate answer for id {}", r.id);
                prop_assert_eq!(r.probs.len(), NUM_CLASSES);
            }
        }
        prop_assert_eq!(seen.len() as u64, run.telemetry.answered);
        prop_assert_eq!(run.telemetry.answered + run.telemetry.shed,
            run.telemetry.submitted);
    }

    // Property (b): batched, parallel serving is bitwise identical to
    // calling predict_proba one row at a time — across 1, 2, and 4 workers.
    #[test]
    fn batched_parallel_output_is_bitwise_equal_to_serial_single_requests(
        n in 1usize..60,
        seed in 0u64..1_000_000,
        max_batch in 1usize..16,
        delay in 0u64..400,
    ) {
        let m = model();
        let requests = stream(n, seed, 20);
        // Queue wide open: every request admitted, so all are comparable.
        let mut baseline: Option<Vec<Vec<f32>>> = None;
        for workers in [1usize, 2, 4] {
            let run = ServingEngine::run(
                &m,
                config(max_batch, delay, 4096, 0, workers),
                &requests,
            ).unwrap();
            let probs: Vec<Vec<f32>> = run.responses.iter().map(|r| {
                r.as_ref().expect("queue_cap 4096 admits everything").probs.clone()
            }).collect();
            for (req, got) in requests.iter().zip(&probs) {
                let x = Tensor::from_vec(req.input.clone()).reshaped(&[1, INPUT_DIM]);
                let one = m.predict_proba(&x);
                prop_assert_eq!(got.as_slice(), one.row(0),
                    "workers={} differs from single-request path", workers);
            }
            match &baseline {
                None => baseline = Some(probs),
                Some(b) => prop_assert_eq!(b, &probs,
                    "worker count {} changed outputs", workers),
            }
        }
    }

    // Property (c): the prediction cache is an invisible optimization —
    // identical responses with caching on and off.
    #[test]
    fn cache_on_off_never_changes_predictions(
        n in 1usize..60,
        seed in 0u64..1_000_000,
        max_batch in 1usize..12,
        delay in 0u64..400,
        cache in 1usize..128,
    ) {
        let m = model();
        let requests = stream(n, seed, 50); // heavy duplication → real hits
        let cached = ServingEngine::run(
            &m, config(max_batch, delay, 4096, cache, 1), &requests,
        ).unwrap();
        let uncached = ServingEngine::run(
            &m, config(max_batch, delay, 4096, 0, 1), &requests,
        ).unwrap();

        prop_assert_eq!(uncached.telemetry.cache_hits, 0);
        for (slot, (c, u)) in cached.responses.iter().zip(&uncached.responses).enumerate() {
            let (c, u) = (c.as_ref().unwrap(), u.as_ref().unwrap());
            prop_assert_eq!(&c.probs, &u.probs, "slot {} diverges under caching", slot);
            prop_assert_eq!(c.predicted, u.predicted);
        }
    }

    // Property (d): under real backpressure nothing is silently lost —
    // shed + answered == submitted, and shed slots are exactly the Nones.
    #[test]
    fn shed_plus_answered_equals_submitted(
        n in 1usize..120,
        seed in 0u64..1_000_000,
        max_batch in 1usize..8,
        queue_cap in 1usize..6, // tiny queue: shedding actually happens
        cache_sel in 0usize..2,
    ) {
        let cache = [0usize, 16][cache_sel];
        let m = model();
        // Long deadline + bursty arrivals → the queue really fills up.
        let run = ServingEngine::run(
            &m,
            config(max_batch, 10_000, queue_cap, cache, 1),
            &stream(n, seed, 25),
        ).unwrap();

        let t = &run.telemetry;
        prop_assert_eq!(t.submitted, n as u64);
        prop_assert_eq!(t.shed + t.answered, t.submitted);
        prop_assert_eq!(t.answered, t.admitted);
        let none_slots = run.responses.iter().filter(|r| r.is_none()).count() as u64;
        prop_assert_eq!(none_slots, t.shed);
        prop_assert_eq!(t.cache_hits + t.cache_misses, t.answered);
    }
}

/// Deterministic non-proptest check used by `scripts/check.sh serve`: one
/// fixed stream, asserted identical across 1/2/4 workers and cache on/off,
/// so the CI step has a stable, env-independent anchor.
#[test]
fn fixed_stream_is_identical_across_workers_and_cache() {
    let m = model();
    let requests = stream(48, 1234, 40);
    let runs: Vec<_> = [(1, 0), (2, 0), (4, 0), (1, 32), (4, 32)]
        .into_iter()
        .map(|(workers, cache)| {
            ServingEngine::run(&m, config(6, 150, 4096, cache, workers), &requests).unwrap()
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run.responses.len(), runs[0].responses.len());
        for (a, b) in runs[0].responses.iter().zip(&run.responses) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.probs, b.probs);
            assert_eq!(a.predicted, b.predicted);
        }
    }
    // The cached runs actually exercised the cache.
    assert!(runs[4].telemetry.cache_hits > 0);
}

/// `load()` — the queue-depth signal the router's least-loaded policy
/// balances on — tracks `pending_len` exactly: it rises one per admitted
/// request, is untouched by shed submissions, and returns to zero once the
/// engine drains.
#[test]
fn load_tracks_queue_depth_through_submit_and_drain() {
    let m = model();
    let clock = VirtualClock::new();
    let mut engine = ServingEngine::new(
        &m,
        config(16, 10_000, 3, 0, 1), // cap 3: the 4th submit sheds
        &clock,
    )
    .unwrap();
    assert_eq!(engine.load(), 0);
    let requests = stream(4, 77, 0);
    for (i, r) in requests.iter().take(3).enumerate() {
        engine.submit(r.input.clone()).unwrap();
        assert_eq!(engine.load(), i + 1, "load rises one per admitted request");
        assert_eq!(engine.load(), engine.pending_len());
    }
    // Queue full: the shed submission must not move the load signal.
    assert!(engine.submit(requests[3].input.clone()).is_err());
    assert_eq!(engine.load(), 3, "a shed request never counts as load");
    engine.drain();
    assert_eq!(engine.load(), 0, "drain empties the queue");
    assert_eq!(engine.take_responses().len(), 3);
}
