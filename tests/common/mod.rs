//! Shared environment for the integration tests: a reduced synthetic world
//! built once per test binary.

use std::sync::OnceLock;

use taglets::{
    standard_tasks, AuxiliaryCorpus, ConceptUniverse, Image, ModelZoo, Scads, Task, UniverseConfig,
    ZooConfig,
};

#[allow(dead_code)] // fields vary in use across test binaries
pub struct TestWorld {
    pub universe: ConceptUniverse,
    pub tasks: Vec<Task>,
    pub corpus: AuxiliaryCorpus,
    pub scads: Scads<Image>,
    pub zoo: ModelZoo,
}

pub fn world() -> &'static TestWorld {
    static WORLD: OnceLock<TestWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut universe = ConceptUniverse::new(UniverseConfig {
            graph: taglets::graph::SyntheticGraphConfig {
                num_concepts: 350,
                ..Default::default()
            },
            ..Default::default()
        })
        .expect("universe builds");
        let tasks = standard_tasks(&mut universe).expect("standard tasks build");
        let corpus = universe.build_corpus(15, 0);
        let scads = universe.build_scads(&corpus).expect("corpus is non-empty");
        let zoo = ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default())
            .expect("corpus is non-empty");
        TestWorld {
            universe,
            tasks,
            corpus,
            scads,
            zoo,
        }
    })
}

pub fn task(name: &str) -> &'static Task {
    world()
        .tasks
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no task named {name}"))
}
