//! Property-based tests (proptest) on the system's core invariants.

use proptest::prelude::*;

use taglets::graph::{
    approximate_embedding, retrofit, ConceptEmbeddings, ConceptGraph, ConceptId, Relation,
    RetrofitConfig, Taxonomy,
};
use taglets::scads::{PruneLevel, Scads};
use taglets::tensor::{softmax_rows, Tensor};
use taglets::Augmenter;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A random rooted tree over `n` nodes given parent choices.
fn arbitrary_taxonomy(parents: &[usize]) -> Taxonomy {
    let mut t = Taxonomy::with_root(ConceptId(0));
    for (i, &p) in parents.iter().enumerate() {
        let child = ConceptId(i + 1);
        let parent = ConceptId(p % (i + 1)); // only earlier nodes → acyclic
        t.add_child(parent, child);
    }
    t
}

/// A random small graph with chain + random extra edges.
fn arbitrary_graph(n: usize, extra_edges: &[(usize, usize)]) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for i in 0..n {
        g.add_concept(&format!("c{i}"));
    }
    for i in 1..n {
        g.add_edge(ConceptId(i - 1), ConceptId(i), Relation::IsA);
    }
    for &(a, b) in extra_edges {
        g.add_edge(ConceptId(a % n), ConceptId(b % n), Relation::RelatedTo);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -----------------------------------------------------------------
    // Softmax / pseudo-label simplex invariants
    // -----------------------------------------------------------------

    #[test]
    fn softmax_rows_always_on_simplex(
        rows in 1usize..6,
        cols in 1usize..8,
        values in prop::collection::vec(-50.0f32..50.0, 48),
    ) {
        let data: Vec<f32> = values.into_iter().take(rows * cols).collect();
        prop_assume!(data.len() == rows * cols);
        let logits = Tensor::from_shape(vec![rows, cols], data).unwrap();
        let probs = softmax_rows(&logits);
        for row in probs.rows_iter() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    // -----------------------------------------------------------------
    // Pruning set algebra
    // -----------------------------------------------------------------

    #[test]
    fn prune_level1_is_superset_of_level0(
        parents in prop::collection::vec(0usize..100, 1..40),
        target_raw in 0usize..40,
    ) {
        let taxonomy = arbitrary_taxonomy(&parents);
        let target = ConceptId(target_raw % (parents.len() + 1));
        // `pruned_set` returns a sorted, deduplicated Vec, so subset and
        // membership checks are binary searches.
        let p0 = PruneLevel::Level0.pruned_set(&taxonomy, &[target]);
        let p1 = PruneLevel::Level1.pruned_set(&taxonomy, &[target]);
        prop_assert!(p0.iter().all(|c| p1.binary_search(c).is_ok()));
        prop_assert!(p0.binary_search(&target).is_ok());
        prop_assert!(PruneLevel::NoPruning.pruned_set(&taxonomy, &[target]).is_empty());
    }

    #[test]
    fn pruned_set_of_many_targets_is_union_of_singles(
        parents in prop::collection::vec(0usize..50, 3..20),
        t1 in 0usize..20,
        t2 in 0usize..20,
    ) {
        let taxonomy = arbitrary_taxonomy(&parents);
        let n = parents.len() + 1;
        let a = ConceptId(t1 % n);
        let b = ConceptId(t2 % n);
        let joint = PruneLevel::Level1.pruned_set(&taxonomy, &[a, b]);
        let mut union = PruneLevel::Level1.pruned_set(&taxonomy, &[a]);
        union.extend(PruneLevel::Level1.pruned_set(&taxonomy, &[b]));
        // The concatenation is unordered with duplicates; normalize it to
        // the sorted-dedup form `pruned_set` guarantees before comparing.
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(joint, union);
    }

    // -----------------------------------------------------------------
    // Retrofitting
    // -----------------------------------------------------------------

    #[test]
    fn retrofitting_is_bounded_by_input_hull(
        n in 3usize..12,
        extra in prop::collection::vec((0usize..12, 0usize..12), 0..6),
        values in prop::collection::vec(-2.0f32..2.0, 36),
    ) {
        let g = arbitrary_graph(n, &extra);
        let d = 3;
        let data: Vec<f32> = values.into_iter().take(n * d).collect();
        prop_assume!(data.len() == n * d);
        let base = ConceptEmbeddings::new(Tensor::from_shape(vec![n, d], data).unwrap());
        let fitted = retrofit(&g, &base, &RetrofitConfig::default(), |_| true).unwrap();
        // Jacobi averaging keeps every coordinate inside the convex hull of
        // the base coordinates.
        let max_in = base.matrix().data().iter().cloned().fold(f32::MIN, f32::max);
        let min_in = base.matrix().data().iter().cloned().fold(f32::MAX, f32::min);
        for &v in fitted.matrix().data() {
            prop_assert!(v <= max_in + 1e-4 && v >= min_in - 1e-4);
        }
    }

    #[test]
    fn approximate_embedding_stays_in_hull(
        weights in prop::collection::vec(0.1f32..5.0, 1..4),
    ) {
        let e = ConceptEmbeddings::new(Tensor::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[-1.0, 0.5],
        ]));
        let terms: Vec<(ConceptId, f32)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (ConceptId(i % 3), w))
            .collect();
        let v = approximate_embedding(&e, &terms).unwrap();
        prop_assert!(v.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    // -----------------------------------------------------------------
    // SCADS selection bounds
    // -----------------------------------------------------------------

    #[test]
    fn selection_respects_cnk_budget(
        n_concepts in 2usize..6,
        k in 1usize..5,
        per_concept in 1usize..8,
    ) {
        // Build a tiny scads over a chain graph with `per_concept` items.
        let g = arbitrary_graph(10, &[]);
        let mut taxonomy = Taxonomy::with_root(ConceptId(0));
        for i in 1..10 {
            taxonomy.add_child(ConceptId(i - 1), ConceptId(i));
        }
        let emb = ConceptEmbeddings::new(Tensor::eye(10));
        let mut scads = Scads::new(g, taxonomy, emb);
        let items: Vec<(ConceptId, u8)> = (0..10)
            .flat_map(|c| (0..per_concept).map(move |j| (ConceptId(c), j as u8)))
            .collect();
        scads.install_by_id("items", items).unwrap();
        let targets = [ConceptId(2), ConceptId(7)];
        let sel = scads.select_related(&targets, n_concepts, k, PruneLevel::NoPruning);
        prop_assert!(sel.len() <= targets.len() * n_concepts * k);
        prop_assert!(sel.num_aux_classes() <= targets.len() * n_concepts);
        // Labels are dense and within range.
        prop_assert!(sel.examples.iter().all(|(_, l)| *l < sel.num_aux_classes()));
        // Per-concept budget holds.
        for class in 0..sel.num_aux_classes() {
            let count = sel.examples.iter().filter(|(_, l)| *l == class).count();
            prop_assert!(count <= k);
        }
    }

    // -----------------------------------------------------------------
    // Augmentation
    // -----------------------------------------------------------------

    #[test]
    fn augmentation_preserves_shape_and_is_stochastic(
        image in prop::collection::vec(-3.0f32..3.0, 8..32),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let aug = Augmenter::default();
        let w = aug.weak(&image, &mut rng);
        let s = aug.strong(&image, &mut rng);
        prop_assert_eq!(w.len(), image.len());
        prop_assert_eq!(s.len(), image.len());
        prop_assert!(w.iter().all(|v| v.is_finite()));
        prop_assert!(s.iter().all(|v| v.is_finite()));
    }

    // -----------------------------------------------------------------
    // Statistics
    // -----------------------------------------------------------------

    #[test]
    fn stats_mean_is_within_range_and_ci_nonnegative(
        values in prop::collection::vec(0.0f32..1.0, 1..10),
    ) {
        let s = taglets::eval::Stats::from_values(&values);
        let lo = values.iter().cloned().fold(f32::MAX, f32::min);
        let hi = values.iter().cloned().fold(f32::MIN, f32::max);
        prop_assert!(s.mean >= lo - 1e-6 && s.mean <= hi + 1e-6);
        prop_assert!(s.ci95 >= 0.0);
        prop_assert!(s.contains(s.mean));
    }
}

// ---------------------------------------------------------------------
// Split protocol invariants (deterministic pool → plain tests with many
// seeds, faster than re-rendering a universe per proptest case)
// ---------------------------------------------------------------------

#[test]
fn splits_partition_the_pool_for_every_seed() {
    let mut universe = taglets::ConceptUniverse::new(taglets::UniverseConfig {
        graph: taglets::graph::SyntheticGraphConfig {
            num_concepts: 200,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("universe builds");
    let tasks = taglets::standard_tasks(&mut universe).expect("standard tasks build");
    let fmd = tasks.iter().find(|t| t.name == "flickr_materials").unwrap();
    for split_seed in 0..6 {
        for shots in [1usize, 5, 20] {
            let s = fmd.split(split_seed, shots);
            assert_eq!(s.labeled_y.len(), fmd.num_classes() * shots);
            assert_eq!(s.test_y.len(), fmd.num_classes() * fmd.test_per_class);
            assert_eq!(
                s.labeled_y.len() + s.unlabeled_y.len() + s.test_y.len(),
                fmd.pool_size()
            );
            // Every class appears exactly `shots` times in the labeled set.
            for c in 0..fmd.num_classes() {
                assert_eq!(s.labeled_y.iter().filter(|&&y| y == c).count(), shots);
            }
        }
    }
}
