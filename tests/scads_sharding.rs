//! Sharding equivalence suite (ISSUE 7): the sharded auxiliary-data layer
//! must be bitwise-indistinguishable from the flat one.
//!
//! Randomized synthetic graphs × {1, 2, 4} shards × {serial, 4-worker}
//! executors, with the unsharded `retrofit` / flat `Scads` queries as the
//! reference oracles. `scripts/check.sh` runs this binary twice — plain and
//! under `TAGLETS_THREADS=4` — so the end-to-end system comparison is also
//! pinned at both worker counts.

mod common;

use taglets::graph::{
    generate, retrofit, retrofit_sharded, ConceptId, GraphPartition, RetrofitConfig,
    SyntheticGraph, SyntheticGraphConfig,
};
use taglets::scads::{PruneLevel, Scads, ShardedScads};
use taglets::tensor::{Concurrency, Executor};
use taglets::{BackboneKind, TagletsConfig, TagletsSystem};

/// Deterministic worlds of varied shape: a broad shallow taxonomy, a deep
/// narrow one, and a small dense one.
fn worlds() -> Vec<SyntheticGraph> {
    [
        SyntheticGraphConfig {
            num_concepts: 300,
            branch_min: 5,
            branch_max: 9,
            max_depth: 3,
            seed: 11,
            ..SyntheticGraphConfig::default()
        },
        SyntheticGraphConfig {
            num_concepts: 220,
            branch_min: 2,
            branch_max: 3,
            max_depth: 9,
            seed: 23,
            ..SyntheticGraphConfig::default()
        },
        SyntheticGraphConfig {
            num_concepts: 90,
            cross_edges_per_node: 4,
            seed: 5,
            ..SyntheticGraphConfig::default()
        },
    ]
    .iter()
    .map(generate)
    .collect()
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sharded_retrofit_is_bitwise_equal_to_the_flat_oracle() {
    for (wi, w) in worlds().iter().enumerate() {
        // A nontrivial out-of-vocabulary pattern: those rows take the
        // no-observation denominator path in the Jacobi update.
        let in_vocab = |c: ConceptId| c.0 % 7 != 3;
        let cfg = RetrofitConfig::default();
        let oracle = retrofit(&w.graph, &w.word_vectors, &cfg, in_vocab).expect("oracle retrofit");
        for shards in [1usize, 2, 4] {
            let partition =
                GraphPartition::build(&w.graph, &w.taxonomy, shards).expect("partition builds");
            for conc in [Concurrency::Serial, Concurrency::Threads(4)] {
                let fitted = retrofit_sharded(
                    &w.graph,
                    &w.word_vectors,
                    &cfg,
                    in_vocab,
                    &partition,
                    &Executor::new(conc),
                )
                .expect("sharded retrofit");
                assert_eq!(
                    bits(fitted.matrix().data()),
                    bits(oracle.matrix().data()),
                    "world {wi} × {shards} shards × {conc}"
                );
            }
        }
    }
}

#[test]
fn partition_invariants_hold_on_randomized_graphs() {
    for (wi, w) in worlds().iter().enumerate() {
        for shards in [1usize, 2, 4] {
            let p = GraphPartition::build(&w.graph, &w.taxonomy, shards).expect("partition");
            p.validate(&w.graph).expect("partition validates");
            assert_eq!(p.num_shards(), shards, "world {wi}");
            // Every concept is owned exactly once, and each shard's halo is
            // exactly its owned concepts' foreign neighbourhood.
            let mut owned_total = 0;
            for s in 0..shards {
                let shard = p.shard(s);
                owned_total += shard.owned().len();
                for &c in shard.owned() {
                    assert_eq!(p.owner_of(c), s);
                }
                for &h in shard.halo() {
                    assert_ne!(p.owner_of(h), s, "halo concepts are foreign");
                    assert!(
                        shard.owned().iter().any(|&c| w
                            .graph
                            .neighbors(c)
                            .iter()
                            .any(|e| e.to == h)),
                        "halo entries border the shard"
                    );
                }
            }
            assert_eq!(owned_total, w.graph.len(), "world {wi} × {shards}");
        }
    }
}

#[test]
fn sharded_queries_are_bitwise_equal_to_the_flat_oracle() {
    for (wi, w) in worlds().into_iter().enumerate() {
        let emb = retrofit(
            &w.graph,
            &w.word_vectors,
            &RetrofitConfig::default(),
            |_| true,
        )
        .expect("retrofit");
        let n = w.graph.len();
        let mut scads = Scads::new(w.graph, w.taxonomy, emb);
        let items: Vec<(ConceptId, u32)> = (0..n)
            .flat_map(|c| (0..3).map(move |k| (ConceptId(c), (c * 10 + k) as u32)))
            .collect();
        scads.install_by_id("aux", items).expect("install");
        let targets = [ConceptId(n / 7), ConceptId(n / 3), ConceptId(n - 2)];
        for prune in PruneLevel::ALL {
            let oracle_sel = scads.select_related(&targets, 5, 2, prune);
            for shards in [1usize, 2, 4] {
                for conc in [Concurrency::Serial, Concurrency::Threads(4)] {
                    let sharded = ShardedScads::new(&scads, shards, Executor::new(conc))
                        .expect("sharded view");
                    for &t in &targets {
                        let flat = scads.related_concepts(t, 5, prune, &targets);
                        let shd = sharded.related_concepts(t, 5, prune, &targets);
                        let pack = |v: &[(ConceptId, f32)]| -> Vec<(ConceptId, u32)> {
                            v.iter().map(|&(c, s)| (c, s.to_bits())).collect()
                        };
                        assert_eq!(
                            pack(&shd),
                            pack(&flat),
                            "world {wi} target {t} × {shards} × {conc}"
                        );
                    }
                    let sel = sharded.select_related(&targets, 5, 2, prune);
                    assert_eq!(sel.concepts, oracle_sel.concepts);
                    assert_eq!(sel.examples, oracle_sel.examples);
                }
            }
        }
    }
}

#[test]
fn end_to_end_run_is_identical_at_any_shard_count() {
    // The select stage is the only thing `scads_shards` changes, and it is
    // bitwise-stable — so the whole run (pseudo-labels, end model) must be.
    let w = common::world();
    let task = common::task("flickr_materials");
    let split = task.split(0, 1);
    let run_at = |shards: usize| {
        let mut cfg = TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k);
        cfg.scads_shards = shards;
        let sys = TagletsSystem::prepare(&w.scads, &w.zoo, cfg);
        let run = sys
            .run(task, &split, PruneLevel::Level1, 0)
            .expect("system run");
        (
            bits(run.pseudo_labels.data()),
            bits(run.end_model.predict_proba(&split.test_x).data()),
        )
    };
    let flat = run_at(1);
    let sharded = run_at(4);
    assert_eq!(flat.0, sharded.0, "pseudo-labels diverged");
    assert_eq!(flat.1, sharded.1, "end-model outputs diverged");
}
