//! # TAGLETS — automatic semi-supervised learning with auxiliary data
//!
//! A full-system Rust reproduction of *"TAGLETS: A System for Automatic
//! Semi-Supervised Learning with Auxiliary Data"* (Piriyakulkij et al.,
//! MLSys 2022), built entirely from scratch: tensor/autograd engine, neural
//! networks, a ConceptNet-style knowledge graph with retrofitted
//! embeddings, the SCADS auxiliary-data store, a synthetic data universe
//! standing in for ImageNet-21k and the four evaluation datasets, the four
//! TAGLETS modules, ensembling, distillation, and every baseline from the
//! paper's evaluation.
//!
//! This crate is a facade: it re-exports the most-used types and exposes
//! each subsystem as a module. See `README.md` for the architecture map and
//! `DESIGN.md`/`EXPERIMENTS.md` for the reproduction methodology.
//!
//! ## Quickstart
//!
//! ```no_run
//! use taglets::{
//!     standard_tasks, BackboneKind, ConceptUniverse, ModelZoo, PruneLevel, TagletsConfig,
//!     TagletsSystem, ZooConfig,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A world: knowledge graph + auxiliary corpus + target tasks.
//! let mut universe = ConceptUniverse::with_seed(7)?;
//! let tasks = standard_tasks(&mut universe)?;
//! let corpus = universe.build_corpus(25, 0);
//! let scads = universe.build_scads(&corpus)?;
//! let zoo = ModelZoo::pretrain(&universe, &corpus, &ZooConfig::default())?;
//!
//! // 2. Prepare once, run per task/split.
//! let system = TagletsSystem::prepare(
//!     &scads,
//!     &zoo,
//!     TagletsConfig::for_backbone(BackboneKind::ResNet50ImageNet1k),
//! );
//! let split = tasks[0].split(0, 1);
//! let run = system.run(&tasks[0], &split, PruneLevel::NoPruning, 0)?;
//! println!("1-shot accuracy: {:.3}", run.end_model.accuracy(&split.test_x, &split.test_y));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use taglets_core::{
    fixmatch_train, ClassifierTaglet, Concurrency, CoreError, DispatchPolicy, EndModelConfig,
    Ensemble, Executor, FixMatchConfig, FixMatchModule, InferencePath, ModuleContext,
    ModuleTelemetry, MultiTaskConfig, MultiTaskModule, RouteConfig, RouteError, RouteResponse,
    RouteRun, RouteTelemetry, RoutedRequest, Router, RunTelemetry, ServableModel, ServeConfig,
    ServeError, ServeResponse, ServeRun, ServeTelemetry, ServingEngine, StageTelemetry, Taglet,
    TagletModule, TagletsConfig, TagletsRun, TagletsSystem, TenantId, TenantTelemetry,
    TimedRequest, TrainedTaglet, TransferConfig, TransferModule, VirtualClock, ZslKgConfig,
    ZslKgModule,
};
pub use taglets_data::{
    standard_tasks, Augmenter, AuxiliaryCorpus, BackboneKind, ClassSpec, ConceptUniverse,
    DataError, Domain, Image, ModelZoo, PretrainedModel, Task, TaskSplit, UniverseConfig,
    ZooConfig,
};
pub use taglets_graph::{ConceptGraph, ConceptId, GraphError, Relation, Taxonomy};
pub use taglets_scads::{AuxiliarySelection, DatasetId, PruneLevel, Scads, ScadsError};

/// The tensor/autograd substrate (re-export of `taglets-tensor`).
pub mod tensor {
    pub use taglets_tensor::*;
}

/// Neural-network layers and training loops (re-export of `taglets-nn`).
pub mod nn {
    pub use taglets_nn::*;
}

/// Knowledge graph, retrofitting, and the ZSL-KG GNN (re-export of
/// `taglets-graph`).
pub mod graph {
    pub use taglets_graph::*;
}

/// The structured collection of annotated datasets (re-export of
/// `taglets-scads`).
pub mod scads {
    pub use taglets_scads::*;
}

/// Synthetic universe, tasks, and the pretrained-model zoo (re-export of
/// `taglets-data`).
pub mod data {
    pub use taglets_data::*;
}

/// Evaluation baselines from the paper (re-export of `taglets-baselines`).
pub mod baselines {
    pub use taglets_baselines::*;
}

/// Experiment runner, metrics, and table formatting (re-export of
/// `taglets-eval`).
pub mod eval {
    pub use taglets_eval::*;
}
