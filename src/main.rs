//! `taglets` — command-line interface to the TAGLETS reproduction.
//!
//! ```text
//! taglets tasks                         list the evaluation tasks
//! taglets run      [OPTIONS]            run TAGLETS on one task split
//! taglets compare  [OPTIONS]            TAGLETS vs every baseline on one split
//! taglets related  --class NAME         SCADS retrieval for a target class
//!
//! OPTIONS:
//!   --task NAME        task (default office_home_product)
//!   --shots N          labeled examples per class (default 1)
//!   --split N          train/test split seed (default 0)
//!   --seed N           training seed (default 0)
//!   --backbone KIND    resnet50 | bit (default resnet50)
//!   --prune LEVEL      none | 0 | 1 (default none)
//!   --save PATH        write the servable end model to PATH (run only)
//!   --scale SCALE      smoke | paper (default: TAGLETS_SCALE or paper)
//! ```

use std::collections::HashMap;

use taglets::eval::{Experiment, ExperimentScale, Method};
use taglets::{BackboneKind, PruneLevel, TagletsConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let opts = parse_options(&args[1..]).unwrap_or_else(|e| {
        eprintln!("error: {e}\n\n{}", usage());
        std::process::exit(2);
    });
    let result = match command.as_str() {
        "tasks" => cmd_tasks(&opts),
        "run" => cmd_run(&opts),
        "compare" => cmd_compare(&opts),
        "related" => cmd_related(&opts),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() -> &'static str {
    "taglets — automatic semi-supervised learning with auxiliary data\n\
     \n\
     USAGE: taglets <tasks|run|compare|related> [--task NAME] [--shots N]\n\
            [--split N] [--seed N] [--backbone resnet50|bit] [--prune none|0|1]\n\
            [--class NAME] [--save PATH] [--scale smoke|paper]"
}

struct Options {
    map: HashMap<String, String>,
}

impl Options {
    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn task(&self) -> &str {
        self.get("task").unwrap_or("office_home_product")
    }

    fn shots(&self) -> Result<usize, String> {
        self.get("shots")
            .unwrap_or("1")
            .parse()
            .map_err(|_| "shots must be a positive integer".to_string())
    }

    fn split(&self) -> Result<u64, String> {
        self.get("split")
            .unwrap_or("0")
            .parse()
            .map_err(|_| "split must be an integer".to_string())
    }

    fn seed(&self) -> Result<u64, String> {
        self.get("seed")
            .unwrap_or("0")
            .parse()
            .map_err(|_| "seed must be an integer".to_string())
    }

    fn backbone(&self) -> Result<BackboneKind, String> {
        match self.get("backbone").unwrap_or("resnet50") {
            "resnet50" | "resnet" => Ok(BackboneKind::ResNet50ImageNet1k),
            "bit" => Ok(BackboneKind::BitImageNet21k),
            other => Err(format!("unknown backbone `{other}` (use resnet50|bit)")),
        }
    }

    fn prune(&self) -> Result<PruneLevel, String> {
        match self.get("prune").unwrap_or("none") {
            "none" => Ok(PruneLevel::NoPruning),
            "0" => Ok(PruneLevel::Level0),
            "1" => Ok(PruneLevel::Level1),
            other => Err(format!("unknown prune level `{other}` (use none|0|1)")),
        }
    }

    fn scale(&self) -> ExperimentScale {
        match self.get("scale") {
            Some("smoke") => ExperimentScale::Smoke,
            Some(_) => ExperimentScale::Paper,
            None => ExperimentScale::from_env(),
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(Options { map })
}

fn build_env(opts: &Options) -> Experiment {
    eprintln!("[building the evaluation environment — one-time cost]");
    Experiment::standard(opts.scale()).expect("the standard environment builds at every scale")
}

fn cmd_tasks(opts: &Options) -> Result<(), String> {
    let env = build_env(opts);
    for task in env.tasks() {
        let summary = taglets::data::TaskSummary::compute(task, env.universe().taxonomy());
        println!("{}", summary.to_line());
    }
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let env = build_env(opts);
    let task = env.task(opts.task()).map_err(|e| e.to_string())?;
    let split = task.split(opts.split()?, opts.shots()?);
    let system = env.system(TagletsConfig::for_backbone(opts.backbone()?));
    let run = system
        .run(task, &split, opts.prune()?, opts.seed()?)
        .map_err(|e| e.to_string())?;
    println!(
        "task {} | {}-shot | split {} | {} | {}",
        task.name,
        split.shots,
        split.split_seed,
        opts.backbone()?,
        opts.prune()?
    );
    println!(
        "selected |R| = {} images / {} aux classes",
        run.num_auxiliary_examples, run.num_auxiliary_classes
    );
    for (taglet, m) in run.taglets.iter().zip(&run.telemetry.modules) {
        let (name, secs) = (&m.name, m.seconds);
        println!(
            "  {:<10} acc {:.3}  ({secs:.2}s)",
            name,
            taglet.accuracy(&split.test_x, &split.test_y)
        );
    }
    println!(
        "  {:<10} acc {:.3}",
        "ensemble",
        run.ensemble().accuracy(&split.test_x, &split.test_y)
    );
    println!(
        "  {:<10} acc {:.3}  ({:.2}s, {} parameters)",
        "end model",
        run.end_model.accuracy(&split.test_x, &split.test_y),
        run.telemetry.end_model_seconds(),
        run.end_model.num_parameters()
    );
    if let Some(path) = opts.get("save") {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        run.end_model.save(file).map_err(|e| e.to_string())?;
        println!("servable model written to {path}");
    }
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let env = build_env(opts);
    let task = env.task(opts.task()).map_err(|e| e.to_string())?;
    let split = task.split(opts.split()?, opts.shots()?);
    let backbone = opts.backbone()?;
    let seed = opts.seed()?;
    println!(
        "task {} | {}-shot | split {} | {}",
        task.name, split.shots, split.split_seed, backbone
    );
    let mut methods = Method::table_rows();
    methods.extend(Method::pruning_rows());
    for method in methods {
        let acc = method
            .evaluate(&env, task, &split, backbone, seed)
            .map_err(|e| e.to_string())?;
        println!("  {:<24} {:.3}", method.label(), acc);
    }
    Ok(())
}

fn cmd_related(opts: &Options) -> Result<(), String> {
    let env = build_env(opts);
    let class = opts
        .get("class")
        .ok_or("`related` needs --class NAME (e.g. --class plastic)")?;
    let scads = env.scads();
    let target = scads.graph().require(class).map_err(|e| e.to_string())?;
    for prune in PruneLevel::ALL {
        let related = scads.related_concepts(target, 8, prune, &[target]);
        let names: Vec<String> = related
            .iter()
            .map(|(c, s)| format!("{} ({s:.2})", scads.graph().name(*c)))
            .collect();
        println!("{prune:<14}: {}", names.join(", "));
    }
    Ok(())
}
